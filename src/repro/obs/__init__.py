"""Fleet-wide observability: metric shards, request tracing, rendering.

The serving fleet is multi-process (``SO_REUSEPORT`` workers plus a stream
supervisor), so observability must survive two failure modes that a
single-process ``/metrics`` endpoint cannot: a scrape that lands on one
random worker must still describe the whole fleet, and a worker crash must
not silently zero its counters.  This package provides the pieces:

* :mod:`repro.obs.shards` — mmap-backed per-process metric shard files
  (stdlib ``mmap`` + NumPy), scrape-time aggregation, and stale-shard
  reaping that preserves dead workers' totals;
* :mod:`repro.obs.render` — Prometheus text rendering of per-worker plus
  fleet-total series, and a scrape parser for ``repro status``;
* :mod:`repro.obs.tracing` — request ids and per-request span timings
  (queue wait, batch assembly, model load, segmentation, fold-in);
* :mod:`repro.obs.logging` — structured JSON event lines for slow
  requests and stream refresh failures;
* :mod:`repro.obs.history` — an append-only, crash-safe ring of sampled
  fleet totals (the :class:`HistoryRecorder` thread) with windowed
  rate/delta/quantile queries;
* :mod:`repro.obs.slo` — declarative SLOs evaluated over history windows
  into fast/slow burn rates, exported as ``repro_slo_*`` gauges and
  ``/healthz`` verdicts;
* :mod:`repro.obs.profile` — a stdlib sampling profiler producing
  collapsed-stack flamegraph text (``GET /debug/profile``).

:data:`METRIC_CATALOG` is the authoritative list of every metric the
package exports — ``docs/observability.md`` is pinned to it by the docs
test suite, and a live scrape may only emit families listed here.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.obs.history import (
    HistoryRecorder,
    HistoryWindow,
    history_dir,
    read_history,
    read_window,
)
from repro.obs.logging import log_event
from repro.obs.profile import SamplingProfiler, capture_profile, profiled
from repro.obs.render import parse_prometheus, render_fleet, sample_value
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLOSpec,
    SLOVerdict,
    evaluate_slos,
    render_slo_gauges,
)
from repro.obs.shards import (
    FleetSample,
    LATENCY_BUCKETS,
    REAPED_SHARD_NAME,
    SIZE_BUCKETS,
    ShardEntry,
    ShardWriter,
    collect_shards,
    parse_shard_name,
    read_shard_bytes,
    read_shard_file,
    reap_stale_shards,
    shard_path,
)
from repro.obs.tracing import (
    SPAN_NAMES,
    RequestTrace,
    new_request_id,
    sanitize_request_id,
    span_metric,
)

__all__ = [
    "DEFAULT_SLOS", "FleetSample", "HistoryRecorder", "HistoryWindow",
    "LATENCY_BUCKETS", "METRIC_CATALOG", "REAPED_SHARD_NAME",
    "RequestTrace", "SIZE_BUCKETS", "SLOSpec", "SLOVerdict", "SPAN_NAMES",
    "SamplingProfiler", "ShardEntry", "ShardWriter", "build_info",
    "capture_profile", "collect_shards", "evaluate_slos", "history_dir",
    "log_event", "new_request_id", "parse_prometheus", "parse_shard_name",
    "profiled", "read_history", "read_shard_bytes", "read_shard_file",
    "read_window", "reap_stale_shards", "render_fleet",
    "render_slo_gauges", "sample_value", "sanitize_request_id",
    "shard_path", "span_metric",
]

#: Every metric family the package exports, as ``name -> (type, help)``.
#: Names are pre-prefix (rendered as ``repro_<name>``).  The docs table in
#: ``docs/observability.md`` and live scrapes are both pinned to this dict
#: by the test suite, so it cannot drift from the implementation.
METRIC_CATALOG: Dict[str, Tuple[str, str]] = {
    "build_info": ("gauge", "Version and engine defaults of the serving build"),
    # HTTP front door ----------------------------------------------------
    "http_requests_total": ("counter", "HTTP requests accepted, any route"),
    "http_errors_total": ("counter", "HTTP requests answered with an error"),
    "slow_requests_total": (
        "counter", "Requests slower than ServeConfig.slow_request_seconds"),
    "http_healthz_seconds": ("histogram", "GET /healthz latency"),
    "http_metrics_seconds": ("histogram", "GET /metrics latency"),
    "http_v1_models_seconds": ("histogram", "GET /v1/models latency"),
    "http_v1_infer_seconds": ("histogram", "POST /v1/infer latency"),
    "http_v1_segment_seconds": ("histogram", "POST /v1/segment latency"),
    "http_v1_topics_seconds": ("histogram", "GET /v1/topics latency"),
    "http_v1_log_manifest_seconds": (
        "histogram", "GET /v1/log/manifest latency"),
    "http_v1_log_shard_seconds": (
        "histogram", "GET /v1/log/shard/<name> latency"),
    "http_debug_profile_seconds": (
        "histogram", "GET /debug/profile latency (includes the capture)"),
    "http_unmatched_seconds": ("histogram", "Latency of unknown routes"),
    # Micro-batching scheduler -------------------------------------------
    "infer_requests_total": ("counter", "Inference requests submitted"),
    "infer_documents_total": ("counter", "Documents folded in, all requests"),
    "infer_batches_total": ("counter", "Vectorized fold-in batches executed"),
    "infer_batch_seconds": ("histogram", "Wall-clock per executed batch"),
    "infer_batch_size": ("histogram", "Requests coalesced per batch"),
    # Request spans ------------------------------------------------------
    "span_queue_wait_seconds": (
        "histogram", "Submit to batch-execution start, per request"),
    "span_batch_assembly_seconds": (
        "histogram", "Batch partitioning and seed derivation, per batch"),
    "span_model_load_seconds": (
        "histogram", "Registry fetch inside a batch (usually a cache hit)"),
    "span_segmentation_seconds": (
        "histogram", "Vectorized phrase segmentation half of a batch"),
    "span_fold_in_seconds": (
        "histogram", "Gibbs fold-in sampling half of a batch"),
    # Model registry -----------------------------------------------------
    "registry_loads_total": ("counter", "Cold bundle loads"),
    "registry_reloads_total": ("counter", "Hot reloads of changed bundles"),
    "registry_evictions_total": ("counter", "LRU evictions"),
    "registry_hits_total": ("counter", "Requests served by a resident bundle"),
    "registry_stale_hits_total": (
        "counter", "Requests answered from the previous version mid-swap"),
    "registry_load_seconds": ("histogram", "Bundle load wall-clock"),
    "registry_swap_lag_seconds": (
        "histogram", "Publish to resident-swap lag of stream bundles"),
    # Stream ingestion / refresh -----------------------------------------
    "stream_ingested_documents_total": (
        "counter", "Documents appended to the stream log"),
    "stream_duplicate_documents_total": (
        "counter", "Documents dropped by ingest dedup"),
    "stream_ingest_tokens_total": ("counter", "Tokens ingested"),
    "stream_ingest_seconds": ("histogram", "Wall-clock per ingest call"),
    "stream_refreshes_total": ("counter", "Stream refreshes published"),
    "stream_refresh_seconds": ("histogram", "Wall-clock per stream refresh"),
    "stream_refresh_errors_total": (
        "counter", "Stream refresh attempts that raised"),
    "stream_refresh_recoveries_total": (
        "counter", "Refresh successes after one or more consecutive errors"),
    # Log shipping (repro.replicate follower) ----------------------------
    "replica_lag_docs": (
        "gauge", "Documents the primary holds that this follower has not "
                 "yet committed"),
    "shipping_shards_total": (
        "counter", "Shards fully fetched, verified, and committed"),
    "shipping_bytes_total": (
        "counter", "Shard bytes fetched over HTTP, including retried ranges"),
    "shipping_retries_total": (
        "counter", "Shipping network calls retried after a failure"),
    "shipping_verify_failures_total": (
        "counter", "Fetched shard data rejected by SHA-256 or offset "
                   "verification"),
    "shipping_fetch_seconds": (
        "histogram", "Wall-clock per shard-range fetch"),
    "shipping_sync_seconds": (
        "histogram", "Wall-clock per follower sync cycle"),
    # Rollout coordinator ------------------------------------------------
    "rollout_state": (
        "gauge", "Coordinator state (0 idle, 1 canary, 2 fanout, 3 done, "
                 "4 rolled back)"),
    "rollout_promotions_total": (
        "counter", "Targets successfully promoted to a new version"),
    "rollout_rollbacks_total": (
        "counter", "Rollouts aborted and rolled back to the previous "
                   "version"),
    "rollout_promote_seconds": (
        "histogram", "Publish-to-healthy wall-clock per promoted target"),
    # SLO engine (evaluated over metrics history) ------------------------
    "slo_objective": (
        "gauge", "Declared objective of each SLO (label slo=<name>)"),
    "slo_value": (
        "gauge", "Observed value of each SLO over the slow window"),
    "slo_burn_rate_fast": (
        "gauge", "Fast-window burn rate (observed / objective; >1 burns "
                 "budget)"),
    "slo_burn_rate_slow": (
        "gauge", "Slow-window burn rate (observed / objective; >1 burns "
                 "budget)"),
    "slo_healthy": (
        "gauge", "1 unless the SLO is breaching in both windows"),
}


def build_info() -> Dict[str, str]:
    """Labels for the ``repro_build_info`` gauge: version, engine defaults.

    Uses the cheap engine resolvers (never the LDA kernel compiler), so
    rendering ``/metrics`` can never trigger a C build.
    """
    from repro import __version__
    from repro.core.frequent_phrases import resolve_mining_engine
    from repro.core.infer import resolve_inference_engine

    return {
        "version": __version__,
        "inference_engine": resolve_inference_engine("auto"),
        "mining_engine": resolve_mining_engine("auto"),
    }
