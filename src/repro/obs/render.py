"""Prometheus text rendering of a fleet sample, and a scrape parser.

:func:`render_fleet` turns one :class:`~repro.obs.shards.FleetSample` into
the text exposition format: every counter family gets per-``worker_id``
labeled series plus an unlabeled fleet-total line (the total folds in the
reaped accumulator, so dead workers' counts are never lost); every
histogram family gets fleet-wide cumulative ``_bucket{le=...}`` series with
``_sum``/``_count``, plus per-worker ``_sum``/``_count``.  A
``repro_build_info`` gauge pins version and engine defaults so dashboards
can correlate behaviour changes with deploys.

:func:`parse_prometheus` is the reverse direction for ``repro status``: it
parses a scrape back into ``{family: [(labels, value), ...]}`` without any
external client library.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.shards import (FleetSample, KIND_COUNTER, KIND_GAUGE,
                              bucket_bounds)


def _fmt(value: float) -> str:
    """Render a sample value, preferring integer formatting when exact."""
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: Mapping[str, str]) -> str:
    """Render a label set (deterministic order, ``worker_id`` first)."""
    ordered = sorted(pairs.items(),
                     key=lambda kv: (kv[0] != "worker_id", kv[0]))
    inner = ",".join(f'{key}="{_escape(str(value))}"'
                     for key, value in ordered)
    return "{" + inner + "}" if inner else ""


def _worker_sort_key(label: str) -> Tuple[int, object]:
    """Numeric worker ids first in order, then named shards (stream...)."""
    return (0, int(label)) if label.isdigit() else (1, label)


def render_fleet(sample: FleetSample,
                 build_info: Optional[Mapping[str, str]] = None,
                 prefix: str = "repro") -> str:
    """Render per-worker plus fleet-total series in Prometheus text format."""
    def clean(name: str) -> str:
        return "".join(c if c.isalnum() or c == "_" else "_" for c in name)

    lines: List[str] = []
    if build_info is not None:
        metric = f"{prefix}_build_info"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{_labels(build_info)} 1")

    totals = sample.totals()
    worker_labels = sorted(sample.workers, key=_worker_sort_key)

    for name in sorted(totals):
        total = totals[name]
        metric = f"{prefix}_{clean(name)}"
        if total.kind in (KIND_COUNTER, KIND_GAUGE):
            # Gauges render like counters, but their unlabeled fleet line
            # is the max across live workers (see ShardEntry.merged), not
            # a sum — "worst lag anywhere" is the fleet-wide answer.
            kind_name = "counter" if total.kind == KIND_COUNTER else "gauge"
            lines.append(f"# TYPE {metric} {kind_name}")
            for label in worker_labels:
                entry = sample.workers[label].get(name)
                if entry is not None:
                    lines.append(f'{metric}{{worker_id="{label}"}} '
                                 f"{_fmt(entry.value)}")
            lines.append(f"{metric} {_fmt(total.value)}")
        else:
            bounds = bucket_bounds(total.kind)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0.0
            for bound, count in zip(bounds, total.bucket_counts):
                cumulative += float(count)
                lines.append(f'{metric}_bucket{{le="{bound}"}} '
                             f"{_fmt(cumulative)}")
            lines.append(f'{metric}_bucket{{le="+Inf"}} {_fmt(total.count)}')
            for label in worker_labels:
                entry = sample.workers[label].get(name)
                if entry is not None:
                    lines.append(f'{metric}_sum{{worker_id="{label}"}} '
                                 f"{_fmt(entry.sum)}")
                    lines.append(f'{metric}_count{{worker_id="{label}"}} '
                                 f"{_fmt(entry.count)}")
            lines.append(f"{metric}_sum {_fmt(total.sum)}")
            lines.append(f"{metric}_count {_fmt(total.count)}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[^}\"]|\"(?:[^\"\\]|\\.)*\")*)\})?"
    r"\s+(?P<value>\S+)\s*$")
_LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')
_ESCAPE_RE = re.compile(r"\\(.)")


def _unescape(raw: str) -> str:
    """Undo :func:`_escape` in one pass (``\\\\``, ``\\"``, ``\\n``).

    A sequential ``str.replace`` chain corrupts adjacent escapes (the
    backslash freed by unescaping ``\\"`` must not feed a later
    ``\\\\`` replacement), so each escape pair is resolved exactly once.
    """
    return _ESCAPE_RE.sub(
        lambda match: "\n" if match.group(1) == "n" else match.group(1), raw)


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse a text-format scrape into ``{family: [(labels, value)]}``.

    Good enough for scrapes this package renders (and for ``repro status``
    to consume any standard exposition text); comment/``# TYPE`` lines are
    skipped, unparseable lines are ignored.
    """
    families: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        labels = {key: _unescape(raw)
                  for key, raw in
                  _LABEL_RE.findall(match.group("labels") or "")}
        families.setdefault(match.group("name"), []).append((labels, value))
    return families


def sample_value(families: Dict[str, List[Tuple[Dict[str, str], float]]],
                 name: str,
                 labels: Optional[Mapping[str, str]] = None) -> Optional[float]:
    """Look up one sample: exact label match (``None`` labels = unlabeled)."""
    wanted = dict(labels or {})
    for found, value in families.get(name, []):
        if found == wanted:
            return value
    return None


__all__ = ["render_fleet", "parse_prometheus", "sample_value"]
