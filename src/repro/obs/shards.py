"""Mmap-backed per-process metric shards and their scrape-time aggregation.

The serving fleet (:mod:`repro.serve.fleet`) runs N worker processes behind
one ``SO_REUSEPORT`` socket, so a ``/metrics`` scrape lands on *one* worker.
To make the scrape fleet-wide anyway, every process appends its counters and
histograms to a private mmap-backed **shard file** in a shared directory
(Prometheus-multiprocess style, built on stdlib :mod:`mmap` plus NumPy —
no external client library).  Whichever worker answers the scrape reads all
live shards at that moment and emits per-``worker_id`` series plus fleet
totals.

Shard format (little-endian, fixed capacity, append-only)::

    offset 0   magic     b"RPROBS1\\n"           (8 bytes)
    offset 8   used      uint64 payload bytes    (8 bytes)
    offset 16  entries   back to back, each:
                 kind    uint32  (0 counter, 1 latency hist, 2 size hist,
                                  3 gauge)
                 n_slots uint32
                 key_len uint32
                 pad     uint32  (reserved, zero)
                 key     UTF-8, zero-padded to a multiple of 8 bytes
                 slots   n_slots x float64

Writers are single-process (guarded by an in-process lock); readers in
other processes may race them.  The ``used`` header is only advanced *after*
an entry's header+key+slots are fully written, so a reader never parses a
torn entry, and every slot is an aligned 8-byte float64 — on the platforms
we target an aligned 8-byte store is atomic, so a racing read observes the
old or the new value, never a mix (the same assumption the official
Prometheus multiprocess client makes).

Histograms store *non-cumulative* bucket counts plus ``sum`` and ``count``
slots; the cumulative ``le`` series Prometheus expects is computed at render
time.  Bucket bounds are fixed per kind (latency vs size) so shards from
different processes merge slot-by-slot.
"""

from __future__ import annotations

import mmap
import os
import re
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

MAGIC = b"RPROBS1\n"
HEADER_BYTES = 16
_ENTRY_HEADER = struct.Struct("<IIII")

KIND_COUNTER = 0
KIND_LATENCY = 1
KIND_SIZE = 2
KIND_GAUGE = 3

#: Upper bounds (seconds) for latency histograms — names ending ``_seconds``.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)
#: Upper bounds for size histograms (batch sizes, document counts, ...).
SIZE_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

_BUCKETS_BY_KIND = {KIND_LATENCY: LATENCY_BUCKETS, KIND_SIZE: SIZE_BUCKETS}

DEFAULT_CAPACITY = 1 << 20

#: Stable file name the reaper merges dead workers' shards into.
REAPED_SHARD_NAME = "metrics-reaped.shard"

_SHARD_RE = re.compile(r"^metrics-(?P<label>[A-Za-z0-9_]+)-(?P<pid>\d+)\.shard$")


def histogram_kind(name: str) -> int:
    """Return the histogram kind (bucket set) used for metric ``name``."""
    return KIND_LATENCY if name.endswith("_seconds") else KIND_SIZE


def bucket_bounds(kind: int) -> Tuple[float, ...]:
    """Return the fixed upper bucket bounds for histogram ``kind``."""
    return _BUCKETS_BY_KIND[kind]


def shard_path(directory: Union[str, Path], label: str,
               pid: Optional[int] = None) -> Path:
    """Return the shard file path for process ``pid`` labeled ``label``."""
    pid = os.getpid() if pid is None else pid
    return Path(directory) / f"metrics-{label}-{pid}.shard"


@dataclass(frozen=True)
class ShardEntry:
    """One parsed metric from a shard: its kind and a copy of its slots.

    For counters ``slots`` is a single value; for histograms it is
    ``[bucket_0 .. bucket_n, overflow, sum, count]`` with non-cumulative
    bucket counts.
    """

    kind: int
    slots: np.ndarray

    @property
    def value(self) -> float:
        """Counter value (only meaningful for ``KIND_COUNTER`` entries)."""
        return float(self.slots[0])

    @property
    def sum(self) -> float:
        """Histogram sum of observations."""
        return float(self.slots[-2])

    @property
    def count(self) -> float:
        """Histogram observation count."""
        return float(self.slots[-1])

    @property
    def bucket_counts(self) -> np.ndarray:
        """Non-cumulative bucket counts (including the overflow bucket)."""
        return self.slots[:-2]

    def merged(self, other: "ShardEntry") -> "ShardEntry":
        """Return a new entry combining ``other``'s slots with this one's.

        Counters and histograms add slot-wise; gauges take the element-wise
        maximum (a fleet "total" for a gauge like replication lag is the
        worst value across workers, not their sum).
        """
        if other.kind != self.kind or other.slots.shape != self.slots.shape:
            raise ValueError("cannot merge entries of different shapes")
        if self.kind == KIND_GAUGE:
            return ShardEntry(self.kind, np.maximum(self.slots, other.slots))
        return ShardEntry(self.kind, self.slots + other.slots)


class ShardWriter:
    """Single-writer, many-reader metric shard backed by an mmap.

    With ``path=None`` the shard lives in anonymous memory — same write
    path, readable only in-process (the single-worker server uses this so
    one rendering pipeline serves both the 1-worker and N-worker cases).
    With a path, the file is created at fixed ``capacity`` and other
    processes read it concurrently.

    The writer is thread-safe within its process; a shard file must never
    have two writer processes (the fleet guarantees this by keying file
    names on pid).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < HEADER_BYTES + 64:
            raise ValueError("shard capacity too small")
        self.path = Path(path) if path is not None else None
        self.capacity = capacity
        self._lock = threading.Lock()
        self._index: Dict[str, Tuple[int, int, int]] = {}  # name -> (off, kind, n)
        if self.path is None:
            self._file = None
            self._mmap = mmap.mmap(-1, capacity)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a+b")
            if os.fstat(self._file.fileno()).st_size < capacity:
                self._file.truncate(capacity)
            self._mmap = mmap.mmap(self._file.fileno(), capacity)
            existing = read_shard_bytes(bytes(self._mmap[:]))
            if existing:  # re-opened (restart with a recycled pid): reindex
                self._reindex()
        if self._mmap[:len(MAGIC)] != MAGIC:
            self._mmap[:len(MAGIC)] = MAGIC
            self._set_used(0)
        self._array = np.frombuffer(self._mmap, dtype=np.float64)

    def _used(self) -> int:
        return struct.unpack_from("<Q", self._mmap, 8)[0]

    def _set_used(self, used: int) -> None:
        struct.pack_into("<Q", self._mmap, 8, used)

    def _reindex(self) -> None:
        """Rebuild the name index from entries already in the file."""
        offset = HEADER_BYTES
        end = HEADER_BYTES + self._used()
        while offset < end:
            kind, n_slots, key_len, _ = _ENTRY_HEADER.unpack_from(
                self._mmap, offset)
            key_pad = -key_len % 8
            key = bytes(self._mmap[offset + 16:offset + 16 + key_len])
            slots_off = offset + 16 + key_len + key_pad
            self._index[key.decode("utf-8")] = (slots_off, kind, n_slots)
            offset = slots_off + 8 * n_slots

    def _entry(self, name: str, kind: int, n_slots: int) -> Tuple[int, int]:
        """Return ``(slot_offset, n_slots)`` for ``name``, appending if new."""
        found = self._index.get(name)
        if found is not None:
            return found[0], found[2]
        with self._lock:
            found = self._index.get(name)
            if found is not None:
                return found[0], found[2]
            key = name.encode("utf-8")
            key_pad = -len(key) % 8
            used = self._used()
            offset = HEADER_BYTES + used
            entry_bytes = 16 + len(key) + key_pad + 8 * n_slots
            if offset + entry_bytes > self.capacity:
                raise RuntimeError(
                    f"metric shard full ({self.capacity} bytes); "
                    f"cannot add {name!r}")
            _ENTRY_HEADER.pack_into(self._mmap, offset, kind, n_slots,
                                    len(key), 0)
            self._mmap[offset + 16:offset + 16 + len(key)] = key
            slots_off = offset + 16 + len(key) + key_pad
            self._mmap[slots_off:slots_off + 8 * n_slots] = b"\0" * (8 * n_slots)
            # Publish the entry only once fully written: readers stop at
            # `used`, so they can never parse a half-initialised entry.
            self._set_used(used + entry_bytes)
            self._index[name] = (slots_off, kind, n_slots)
            return slots_off, n_slots

    def inc_counter(self, name: str, by: float = 1.0) -> None:
        """Add ``by`` to counter ``name`` (created at 0 on first use)."""
        offset, _ = self._entry(name, KIND_COUNTER, 1)
        slot = offset // 8
        self._array[slot] += by

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins).

        Unlike counters, gauges overwrite their single slot — the aligned
        8-byte store keeps racing readers tear-free just like counter adds.
        """
        offset, _ = self._entry(name, KIND_GAUGE, 1)
        self._array[offset // 8] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation under ``name``.

        The bucket set is chosen from the name (``*_seconds`` → latency
        bounds, anything else → size bounds).
        """
        kind = histogram_kind(name)
        bounds = bucket_bounds(kind)
        n_slots = len(bounds) + 3  # buckets + overflow + sum + count
        offset, _ = self._entry(name, kind, n_slots)
        base = offset // 8
        bucket = int(np.searchsorted(bounds, value, side="left"))
        self._array[base + bucket] += 1.0
        self._array[base + n_slots - 2] += value
        self._array[base + n_slots - 1] += 1.0

    def merge_entries(self, entries: Dict[str, ShardEntry]) -> None:
        """Add ``entries``' slots into this shard (used by the reaper).

        Gauge entries are skipped: a dead worker's last gauge sample is
        stale by definition, and folding it into the accumulator would pin
        the fleet line to an old value forever.
        """
        for name, entry in entries.items():
            if entry.kind == KIND_GAUGE:
                continue
            offset, n_slots = self._entry(name, entry.kind,
                                          int(entry.slots.shape[0]))
            if n_slots != entry.slots.shape[0]:
                raise ValueError(f"slot count mismatch merging {name!r}")
            base = offset // 8
            self._array[base:base + n_slots] += entry.slots

    def read(self) -> Dict[str, ShardEntry]:
        """Parse this shard's current contents (copies the slots)."""
        return read_shard_bytes(bytes(self._mmap[:HEADER_BYTES + self._used()]))

    def flush(self) -> None:
        """Flush the mmap to disk (file-backed shards only)."""
        if self._file is not None:
            self._mmap.flush()

    def close(self, unlink: bool = False) -> None:
        """Release the mapping; optionally delete the backing file."""
        self._array = None
        try:
            self._mmap.close()
        except BufferError:  # pragma: no cover - stray numpy view alive
            pass
        if self._file is not None:
            self._file.close()
            if unlink and self.path is not None:
                try:
                    self.path.unlink()
                except OSError:
                    pass


def read_shard_bytes(data: bytes) -> Dict[str, ShardEntry]:
    """Parse raw shard ``data`` into ``{metric_name: ShardEntry}``.

    Tolerant of truncated or foreign files: anything without the magic
    header parses as empty rather than raising, so a scrape never fails
    because one shard is mid-creation.
    """
    entries: Dict[str, ShardEntry] = {}
    if len(data) < HEADER_BYTES or data[:len(MAGIC)] != MAGIC:
        return entries
    used = struct.unpack_from("<Q", data, 8)[0]
    end = min(HEADER_BYTES + used, len(data))
    offset = HEADER_BYTES
    while offset + 16 <= end:
        kind, n_slots, key_len, _ = _ENTRY_HEADER.unpack_from(data, offset)
        key_pad = -key_len % 8
        slots_off = offset + 16 + key_len + key_pad
        entry_end = slots_off + 8 * n_slots
        if entry_end > end or n_slots == 0:
            break
        name = data[offset + 16:offset + 16 + key_len].decode(
            "utf-8", errors="replace")
        slots = np.frombuffer(data, dtype=np.float64, count=n_slots,
                              offset=slots_off).copy()
        entries[name] = ShardEntry(kind, slots)
        offset = entry_end
    return entries


def read_shard_file(path: Union[str, Path]) -> Dict[str, ShardEntry]:
    """Read and parse one shard file (empty dict if unreadable)."""
    try:
        data = Path(path).read_bytes()
    except OSError:
        return {}
    return read_shard_bytes(data)


def parse_shard_name(path: Union[str, Path]) -> Optional[Tuple[str, int]]:
    """Return ``(label, pid)`` for a worker shard file name, else ``None``."""
    match = _SHARD_RE.match(Path(path).name)
    if match is None:
        return None
    return match.group("label"), int(match.group("pid"))


@dataclass
class FleetSample:
    """One scrape-time view of every shard: per-worker series plus reaped.

    ``workers`` maps a worker label (``"0"``, ``"1"``, ``"stream"``, ...) to
    its parsed entries; ``reaped`` holds totals merged from dead workers'
    shards, which the renderer folds into fleet totals so counters survive
    worker restarts.
    """

    workers: Dict[str, Dict[str, ShardEntry]]
    reaped: Dict[str, ShardEntry]

    def totals(self) -> Dict[str, ShardEntry]:
        """Merge every worker plus the reaped accumulator slot-wise."""
        merged: Dict[str, ShardEntry] = {}
        sources: List[Dict[str, ShardEntry]] = list(self.workers.values())
        sources.append(self.reaped)
        for entries in sources:
            for name, entry in entries.items():
                if name in merged:
                    merged[name] = merged[name].merged(entry)
                else:
                    merged[name] = ShardEntry(entry.kind, entry.slots.copy())
        return merged


def collect_shards(directory: Optional[Union[str, Path]] = None,
                   inline: Sequence[Tuple[str, ShardWriter]] = ()
                   ) -> FleetSample:
    """Gather a :class:`FleetSample` from ``directory`` plus in-process shards.

    ``inline`` entries (label, writer) cover anonymous shards that have no
    file — the answering worker always passes its own writer here, so its
    freshest values win over the possibly-staler file view.
    """
    workers: Dict[str, Dict[str, ShardEntry]] = {}
    reaped: Dict[str, ShardEntry] = {}
    if directory is not None and Path(directory).is_dir():
        for path in sorted(Path(directory).iterdir()):
            if path.name == REAPED_SHARD_NAME:
                for name, entry in read_shard_file(path).items():
                    reaped[name] = (reaped[name].merged(entry)
                                    if name in reaped else entry)
                continue
            parsed = parse_shard_name(path)
            if parsed is None:
                continue
            label, _ = parsed
            entries = read_shard_file(path)
            if label in workers:
                for name, entry in entries.items():
                    workers[label] = dict(workers[label])
                    workers[label][name] = (
                        workers[label][name].merged(entry)
                        if name in workers[label] else entry)
            else:
                workers[label] = entries
    for label, writer in inline:
        workers[label] = writer.read()
    return FleetSample(workers=workers, reaped=reaped)


def reap_stale_shards(directory: Union[str, Path],
                      live_pids: Iterable[int]) -> List[Path]:
    """Fold dead workers' shards into the reaped accumulator, then delete.

    ``live_pids`` are the pids the fleet monitor currently tracks; any
    worker shard whose pid is not in the set (and not this process) is
    merged into ``metrics-reaped.shard`` so its counter totals keep
    contributing to the fleet ``_total`` series, and its file is removed.
    Returns the paths reaped.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    live = set(live_pids) | {os.getpid()}
    reaped: List[Path] = []
    accumulator: Optional[ShardWriter] = None
    try:
        for path in sorted(directory.iterdir()):
            parsed = parse_shard_name(path)
            if parsed is None or parsed[1] in live:
                continue
            entries = read_shard_file(path)
            if entries:
                if accumulator is None:
                    accumulator = ShardWriter(directory / REAPED_SHARD_NAME)
                accumulator.merge_entries(entries)
            try:
                path.unlink()
            except OSError:
                continue
            reaped.append(path)
    finally:
        if accumulator is not None:
            accumulator.flush()
            accumulator.close()
    return reaped
