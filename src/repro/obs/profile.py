"""Continuous sampling profiler: collapsed stacks from the stdlib only.

Deterministic instrumentation (:mod:`repro.utils.timing` spans) says how
long each *named* stage took; it cannot say where CPU goes inside one.
:class:`SamplingProfiler` answers that with the classic low-overhead
trick: a sampler thread wakes ~100 times a second, walks
``sys._current_frames()``, and counts each thread's current call stack.
The aggregate comes out in **collapsed-stack** format — one line per
distinct stack, root-first frames joined by ``;`` followed by a sample
count — the exact input ``flamegraph.pl`` / speedscope / inferno expect::

    repro/serve/http.py:_dispatch;repro/core/infer.py:infer_texts_grouped 42

Overhead is proportional to sample rate times thread count, independent
of request rate, and zero between samples — cheap enough to leave wired
into a serving worker.  The serve layer exposes it as
``GET /debug/profile?seconds=N`` (capture N seconds, return the
collapsed text), the stream supervisor can profile each refresh into an
artifact file, and the bench harness records one profile per serving
run.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from pathlib import PurePath
from types import FrameType
from typing import Dict, Iterator, Optional

#: Default seconds between samples (~100 Hz).
DEFAULT_SAMPLE_INTERVAL = 0.01

#: Ceiling on distinct stacks kept, so a pathological workload cannot
#: grow the profile without bound (further new stacks are dropped).
MAX_DISTINCT_STACKS = 100_000


def frame_label(frame: FrameType) -> str:
    """Render one frame as ``path:function`` with a repo-relative path.

    When the source file lives under a ``repro`` package directory the
    label keeps the path from ``repro/`` down (so profiles read as
    ``repro/serve/http.py:_dispatch``); foreign frames keep only the file
    name.
    """
    parts = PurePath(frame.f_code.co_filename).parts
    if "repro" in parts:
        path = "/".join(parts[parts.index("repro"):])
    else:
        path = parts[-1] if parts else "?"
    return f"{path}:{frame.f_code.co_name}"


def stack_signature(frame: Optional[FrameType]) -> str:
    """Collapse one thread's stack into root-first ``;``-joined labels."""
    labels = []
    while frame is not None:
        labels.append(frame_label(frame))
        frame = frame.f_back
    return ";".join(reversed(labels))


class SamplingProfiler:
    """Wall-clock sampling profiler over every thread in the process.

    Start/stop (or use :func:`profiled` / :func:`capture_profile`), then
    read :meth:`collapsed`.  The sampler skips its own thread.  Multiple
    profilers may run concurrently — each keeps private counts.
    """

    def __init__(self, interval: float = DEFAULT_SAMPLE_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be > 0")
        self.interval = float(interval)
        self.counts: Dict[str, int] = {}
        self.n_samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Start the sampler thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="sampling-profiler", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            self.sample(skip_thread=own_id)

    def sample(self, skip_thread: Optional[int] = None) -> None:
        """Take one sample of every live thread's stack right now."""
        for thread_id, frame in sys._current_frames().items():
            if thread_id == skip_thread:
                continue
            signature = stack_signature(frame)
            if not signature:
                continue
            if signature in self.counts:
                self.counts[signature] += 1
            elif len(self.counts) < MAX_DISTINCT_STACKS:
                self.counts[signature] = 1
        self.n_samples += 1

    def stop(self) -> None:
        """Stop the sampler thread (idempotent; counts stay readable)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def collapsed(self) -> str:
        """Return the profile in collapsed-stack format, hottest first."""
        ordered = sorted(self.counts.items(),
                         key=lambda item: (-item[1], item[0]))
        return "\n".join(f"{stack} {count}" for stack, count in ordered) \
            + ("\n" if ordered else "")


@contextmanager
def profiled(interval: float = DEFAULT_SAMPLE_INTERVAL
             ) -> Iterator[SamplingProfiler]:
    """Context manager profiling the enclosed block.

    Example
    -------
    >>> with profiled(interval=0.001) as profiler:
    ...     _ = sum(range(100000))
    >>> isinstance(profiler.collapsed(), str)
    True
    """
    profiler = SamplingProfiler(interval=interval)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()


def capture_profile(seconds: float,
                    interval: float = DEFAULT_SAMPLE_INTERVAL) -> str:
    """Block for ``seconds`` sampling every thread; return collapsed stacks.

    The backing call of ``GET /debug/profile?seconds=N``: the handler
    thread sleeps while the sampler thread watches everything else work.
    """
    if seconds <= 0:
        raise ValueError("profile duration must be > 0")
    with profiled(interval=interval) as profiler:
        time.sleep(seconds)
    return profiler.collapsed()


__all__ = ["DEFAULT_SAMPLE_INTERVAL", "SamplingProfiler", "capture_profile",
           "frame_label", "profiled", "stack_signature"]
