"""Request ids and per-request span timing for the serving stack.

Every HTTP request gets a request id — taken from the client's
``X-Request-Id`` header when it passes :func:`sanitize_request_id`,
generated otherwise — that travels with the request through the
micro-batcher, the model registry, and batched fold-in, and is returned in
the ``X-Request-Id`` response header (plus the ``/v1/infer`` JSON body).

Along the way each hop records its span into a :class:`RequestTrace`:
``queue_wait`` (submit → batch execution start), ``batch_assembly``
(partition + seed derivation), ``model_load`` (registry fetch, usually a
cache hit), ``segmentation`` and ``fold_in`` (the two halves of
``infer_texts_grouped``).  Span durations feed per-span histograms in the
metrics shards — keyed by span name only, never by request id, so metric
cardinality stays fixed — while the per-request breakdown goes to a
structured JSON log line when the request exceeds the configured
slow-request threshold.
"""

from __future__ import annotations

import re
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Canonical span names, in pipeline order (the docs' span glossary table
#: and the bench serving stage iterate this).
SPAN_NAMES = ("queue_wait", "batch_assembly", "model_load",
              "segmentation", "fold_in")

#: Metric name for one span's histogram family.
SPAN_METRIC_TEMPLATE = "span_{name}_seconds"

_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def span_metric(name: str) -> str:
    """Return the shard/registry metric name for span ``name``."""
    return SPAN_METRIC_TEMPLATE.format(name=name)


def new_request_id() -> str:
    """Generate a fresh request id (32 hex chars, collision-safe)."""
    return uuid.uuid4().hex


def sanitize_request_id(raw: Optional[str]) -> Optional[str]:
    """Return a client-supplied id if it is safe to echo, else ``None``.

    Ids are capped at 128 chars of ``[A-Za-z0-9._-]`` so a hostile header
    can neither inject log/header content nor blow up metric labels.
    """
    if raw is None:
        return None
    raw = raw.strip()
    if _REQUEST_ID_RE.match(raw):
        return raw
    return None


@dataclass
class RequestTrace:
    """Span timings for one request, carried from HTTP accept to response.

    ``spans`` accumulates seconds per span name; a span recorded twice
    (e.g. model_load across a retried batch) adds up, mirroring
    :class:`~repro.utils.timing.Stopwatch` semantics.
    """

    request_id: str
    route: str = ""
    started: float = field(default_factory=time.perf_counter)
    spans: Dict[str, float] = field(default_factory=dict)

    def record(self, span: str, seconds: float) -> None:
        """Add ``seconds`` to ``span``'s accumulated time."""
        self.spans[span] = self.spans.get(span, 0.0) + float(seconds)

    def elapsed(self) -> float:
        """Seconds since the trace was created."""
        return time.perf_counter() - self.started

    def as_dict(self) -> Dict[str, object]:
        """Loggable view: id, route, total, and per-span milliseconds."""
        return {
            "request_id": self.request_id,
            "route": self.route,
            "total_ms": round(self.elapsed() * 1000.0, 3),
            "spans_ms": {name: round(seconds * 1000.0, 3)
                         for name, seconds in self.spans.items()},
        }
