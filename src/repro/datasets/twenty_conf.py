"""Synthetic stand-in for the 20Conf dataset (titles from 20 CS conferences).

The real dataset has 44K titles, 5.5K unique words and 351K tokens drawn from
AI, Databases, Data Mining, IR, ML and NLP venues.  The synthetic topics
below use the phrases the paper reports for this corpus (Table 1 shows the
Information Retrieval topic) plus standard terminology of the other areas.
Titles are short, topically focused documents.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.synthetic import (
    DatasetSpec,
    GeneratedCorpus,
    SyntheticCorpusGenerator,
    TopicSpec,
)
from repro.utils.rng import SeedLike

TOPICS = [
    TopicSpec(
        name="information retrieval",
        unigrams=["search", "web", "retrieval", "information", "query",
                  "document", "ranking", "text", "user", "engine"],
        phrases=["information retrieval", "web search", "search engine",
                 "question answering", "web page", "text classification",
                 "collaborative filtering", "topic model", "social networks",
                 "information extraction"],
    ),
    TopicSpec(
        name="machine learning",
        unigrams=["learning", "model", "classification", "feature", "kernel",
                  "training", "supervised", "neural", "bayesian", "inference"],
        phrases=["support vector machine", "machine learning",
                 "feature selection", "learning algorithm", "decision tree",
                 "neural network", "reinforcement learning",
                 "markov blanket", "graphical model"],
    ),
    TopicSpec(
        name="databases",
        unigrams=["database", "query", "data", "system", "processing",
                  "index", "transaction", "storage", "relational", "schema"],
        phrases=["query processing", "database system", "query optimization",
                 "data management", "concurrency control", "relational database",
                 "data integration", "nearest neighbor"],
    ),
    TopicSpec(
        name="data mining",
        unigrams=["mining", "patterns", "clustering", "data", "frequent",
                  "association", "stream", "outlier", "graph", "itemsets"],
        phrases=["data mining", "frequent pattern mining", "association rules",
                 "data streams", "frequent itemsets", "time series",
                 "anomaly detection", "pattern mining", "data sets"],
    ),
    TopicSpec(
        name="natural language processing",
        unigrams=["language", "translation", "parsing", "word", "speech",
                  "semantic", "grammar", "sentence", "corpus", "syntax"],
        phrases=["natural language processing", "machine translation",
                 "speech recognition", "language model", "word sense disambiguation",
                 "named entity recognition", "dependency parsing",
                 "statistical machine translation"],
    ),
]


def spec(n_documents: int = 2000) -> DatasetSpec:
    """Return the 20Conf dataset specification (short title-like documents)."""
    return DatasetSpec(
        name="20conf",
        topics=TOPICS,
        n_documents=n_documents,
        mean_document_slots=5.0,
        background_weight=0.10,
        connector_weight=0.30,
        sentence_slots=8,
        doc_topic_alpha=0.08,
    )


def generate(n_documents: int = 2000, seed: SeedLike = 20) -> GeneratedCorpus:
    """Generate a synthetic 20Conf-style corpus of paper titles."""
    return SyntheticCorpusGenerator(spec(n_documents), seed=seed).generate()
