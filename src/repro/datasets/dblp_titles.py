"""Synthetic stand-in for the DBLP titles dataset (1.9M CS paper titles).

Topics follow the five areas the paper's Table 4 recovers from DBLP
abstracts (search/optimisation, NLP, machine learning, programming
languages, data mining) — the titles corpus covers the same literature, just
with much shorter documents.
"""

from __future__ import annotations

from repro.datasets.synthetic import (
    DatasetSpec,
    GeneratedCorpus,
    SyntheticCorpusGenerator,
    TopicSpec,
)
from repro.utils.rng import SeedLike

TOPICS = [
    TopicSpec(
        name="search and optimization",
        unigrams=["problem", "algorithm", "optimal", "solution", "search",
                  "solve", "constraints", "heuristic", "genetic", "optimization"],
        phrases=["genetic algorithm", "optimization problem", "optimal solution",
                 "evolutionary algorithm", "local search", "search space",
                 "objective function", "search algorithm", "solve this problem"],
    ),
    TopicSpec(
        name="natural language processing",
        unigrams=["word", "language", "text", "speech", "recognition",
                  "translation", "character", "sentences", "grammar", "system"],
        phrases=["natural language", "speech recognition", "language model",
                 "machine translation", "natural language processing",
                 "recognition system", "character recognition",
                 "context free grammars", "sign language"],
    ),
    TopicSpec(
        name="machine learning",
        unigrams=["data", "method", "learning", "clustering", "classification",
                  "features", "classifier", "based", "proposed", "algorithm"],
        phrases=["support vector machine", "learning algorithm",
                 "machine learning", "feature selection", "data sets",
                 "clustering algorithm", "decision tree", "training data",
                 "proposed method"],
    ),
    TopicSpec(
        name="programming languages",
        unigrams=["programming", "language", "code", "type", "object",
                  "implementation", "compiler", "java", "system", "program"],
        phrases=["programming language", "source code", "object oriented",
                 "type system", "data structure", "run time",
                 "code generation", "java programs", "program execution"],
    ),
    TopicSpec(
        name="data mining",
        unigrams=["data", "patterns", "mining", "rules", "set", "event",
                  "time", "association", "stream", "large"],
        phrases=["data mining", "data sets", "association rules",
                 "data streams", "time series", "frequent itemsets",
                 "mining algorithms", "data analysis", "spatio temporal"],
    ),
]


def spec(n_documents: int = 4000) -> DatasetSpec:
    """Return the DBLP-titles dataset specification (short documents)."""
    return DatasetSpec(
        name="dblp-titles",
        topics=TOPICS,
        n_documents=n_documents,
        mean_document_slots=5.0,
        background_weight=0.12,
        connector_weight=0.30,
        sentence_slots=8,
        doc_topic_alpha=0.08,
    )


def generate(n_documents: int = 4000, seed: SeedLike = 21) -> GeneratedCorpus:
    """Generate a synthetic DBLP-titles-style corpus."""
    return SyntheticCorpusGenerator(spec(n_documents), seed=seed).generate()
