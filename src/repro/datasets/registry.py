"""Dataset registry: look up the paper's datasets by name.

Provides a single entry point, :func:`load_dataset`, used by the examples and
the benchmark harness so that every experiment refers to datasets by the same
names the paper uses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.datasets import (
    acl_abstracts,
    ap_news,
    dblp_abstracts,
    dblp_titles,
    twenty_conf,
    yelp_reviews,
)
from repro.datasets.synthetic import GeneratedCorpus
from repro.utils.rng import SeedLike

_GENERATORS: Dict[str, Callable[..., GeneratedCorpus]] = {
    "dblp-titles": dblp_titles.generate,
    "20conf": twenty_conf.generate,
    "dblp-abstracts": dblp_abstracts.generate,
    "ap-news": ap_news.generate,
    "acl-abstracts": acl_abstracts.generate,
    "yelp-reviews": yelp_reviews.generate,
}


def available_datasets() -> List[str]:
    """Return the names of all registered datasets."""
    return sorted(_GENERATORS)


def load_dataset(name: str, n_documents: Optional[int] = None,
                 seed: SeedLike = None) -> GeneratedCorpus:
    """Generate the named dataset.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (e.g. ``"dblp-abstracts"``).
    n_documents:
        Override the dataset's default size (used to scale experiments).
    seed:
        Override the dataset's default seed.
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        ) from None
    kwargs = {}
    if n_documents is not None:
        kwargs["n_documents"] = n_documents
    if seed is not None:
        kwargs["seed"] = seed
    return generator(**kwargs)
