"""Synthetic stand-in for the ACL abstracts dataset (2K abstracts, 231K tokens).

The real corpus is small (it is one of the two datasets every baseline can
actually run on, and the one used for the user studies alongside 20Conf).
Topics are computational-linguistics subareas with their standard
collocations.
"""

from __future__ import annotations

from repro.datasets.synthetic import (
    DatasetSpec,
    GeneratedCorpus,
    SyntheticCorpusGenerator,
    TopicSpec,
)
from repro.utils.rng import SeedLike

TOPICS = [
    TopicSpec(
        name="machine translation",
        unigrams=["translation", "alignment", "bilingual", "source", "target",
                  "phrase", "decoder", "reordering", "parallel", "corpus"],
        phrases=["machine translation", "statistical machine translation",
                 "word alignment", "translation model", "parallel corpus",
                 "translation quality", "phrase based", "language pairs"],
    ),
    TopicSpec(
        name="parsing",
        unigrams=["parsing", "grammar", "tree", "dependency", "syntactic",
                  "parser", "treebank", "constituent", "derivation", "structure"],
        phrases=["dependency parsing", "context free grammar", "parse tree",
                 "syntactic structure", "dependency tree", "penn treebank",
                 "statistical parsing", "phrase structure"],
    ),
    TopicSpec(
        name="speech and language modeling",
        unigrams=["speech", "recognition", "acoustic", "language", "model",
                  "word", "error", "rate", "ngram", "decoding"],
        phrases=["speech recognition", "language model", "word error rate",
                 "acoustic model", "speech synthesis", "recognition system",
                 "spoken language", "language modeling"],
    ),
    TopicSpec(
        name="semantics",
        unigrams=["semantic", "word", "sense", "meaning", "lexical",
                  "similarity", "relations", "wordnet", "disambiguation", "role"],
        phrases=["word sense disambiguation", "semantic role labeling",
                 "semantic similarity", "lexical semantics", "word senses",
                 "semantic relations", "distributional semantics"],
    ),
    TopicSpec(
        name="information extraction",
        unigrams=["extraction", "entity", "named", "relation", "text",
                  "features", "classifier", "corpus", "annotation", "recognition"],
        phrases=["named entity recognition", "information extraction",
                 "relation extraction", "named entities", "feature set",
                 "conditional random fields", "training data", "text corpora"],
    ),
]


def spec(n_documents: int = 800) -> DatasetSpec:
    """Return the ACL-abstracts dataset specification."""
    return DatasetSpec(
        name="acl-abstracts",
        topics=TOPICS,
        n_documents=n_documents,
        mean_document_slots=35.0,
        background_weight=0.18,
        connector_weight=0.40,
        sentence_slots=7,
        doc_topic_alpha=0.25,
    )


def generate(n_documents: int = 800, seed: SeedLike = 25) -> GeneratedCorpus:
    """Generate a synthetic ACL-abstracts-style corpus."""
    return SyntheticCorpusGenerator(spec(n_documents), seed=seed).generate()
