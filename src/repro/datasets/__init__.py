"""Synthetic dataset generators standing in for the paper's six corpora.

The paper evaluates on DBLP titles (1.9M), 20Conf titles (44K), DBLP
abstracts (529K), TREC AP news (106K), ACL abstracts (2K), and Yelp reviews
(230K).  Those corpora are not redistributable and this environment has no
network access, so each dataset is replaced by a synthetic generator
(:mod:`repro.datasets.synthetic`) configured with:

* a set of latent topics, each with characteristic unigrams **and multi-word
  collocations** taken from the phrase lists the paper itself reports
  (Tables 1, 4, 5, 6), plus
* shared background vocabulary and stop words,
* per-dataset document length and size statistics (scaled down to laptop
  size, controllable through the ``n_documents`` argument).

Documents are produced by an LDA-like generative process whose emissions may
be whole phrases, so the generated corpora contain genuine topical structure
and genuine collocations — exactly the properties the ToPMine pipeline and
the baselines exploit.  See DESIGN.md §3 for the substitution rationale.
"""

from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.synthetic import (
    DatasetSpec,
    SyntheticCorpusGenerator,
    TopicSpec,
)

__all__ = [
    "available_datasets",
    "load_dataset",
    "DatasetSpec",
    "SyntheticCorpusGenerator",
    "TopicSpec",
]
