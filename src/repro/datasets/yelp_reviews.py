"""Synthetic stand-in for the Yelp reviews dataset (230K reviews, 11.8M tokens).

Topics and phrases follow the paper's Table 6: breakfast/coffee,
Asian/Chinese food, hotels, grocery stores and Mexican food.  Reviews are
noisy: the paper notes a "plethora of background words and phrases such as
'good', 'love', and 'great'", so this generator uses a larger background
weight and sentiment-flavoured background vocabulary, which is what pushes
Yelp topic quality below the other datasets.
"""

from __future__ import annotations

from repro.datasets.synthetic import (
    DatasetSpec,
    GeneratedCorpus,
    SyntheticCorpusGenerator,
    TopicSpec,
)
from repro.utils.rng import SeedLike

TOPICS = [
    TopicSpec(
        name="breakfast and coffee",
        unigrams=["coffee", "ice", "cream", "flavor", "egg", "chocolate",
                  "breakfast", "tea", "cake", "sweet"],
        phrases=["ice cream", "iced tea", "french toast", "hash browns",
                 "frozen yogurt", "eggs benedict", "peanut butter",
                 "cup of coffee", "iced coffee", "scrambled eggs"],
    ),
    TopicSpec(
        name="asian food",
        unigrams=["food", "good", "place", "ordered", "chicken", "roll",
                  "sushi", "restaurant", "dish", "rice"],
        phrases=["spring rolls", "food was good", "fried rice", "egg rolls",
                 "chinese food", "pad thai", "dim sum", "thai food",
                 "pretty good", "lunch specials"],
    ),
    TopicSpec(
        name="hotels",
        unigrams=["room", "parking", "hotel", "stay", "time", "nice",
                  "place", "great", "area", "pool"],
        phrases=["parking lot", "front desk", "spring training",
                 "staying at the hotel", "dog park", "room was clean",
                 "pool area", "great place", "staff is friendly", "free wifi"],
    ),
    TopicSpec(
        name="grocery stores",
        unigrams=["store", "shop", "prices", "find", "place", "buy",
                  "selection", "items", "love", "great"],
        phrases=["grocery store", "great selection", "farmer's market",
                 "great prices", "parking lot", "wal mart", "shopping center",
                 "great place", "prices are reasonable", "love this place"],
    ),
    TopicSpec(
        name="mexican food",
        unigrams=["good", "food", "place", "burger", "ordered", "fries",
                  "chicken", "tacos", "cheese", "time"],
        phrases=["mexican food", "chips and salsa", "food was good",
                 "hot dog", "rice and beans", "sweet potato fries",
                 "pretty good", "carne asada", "mac and cheese", "fish tacos"],
    ),
]

# Sentiment-heavy background vocabulary specific to review text.
YELP_BACKGROUND_WORDS = (
    "good great love really nice place time service friendly amazing "
    "definitely delicious best better awesome staff wait people recommend "
    "experience review night dinner lunch menu price order little bit"
).split()


def spec(n_documents: int = 1500) -> DatasetSpec:
    """Return the Yelp-reviews dataset specification (noisy medium documents)."""
    return DatasetSpec(
        name="yelp-reviews",
        topics=TOPICS,
        n_documents=n_documents,
        mean_document_slots=30.0,
        background_weight=0.30,
        connector_weight=0.40,
        sentence_slots=6,
        doc_topic_alpha=0.25,
        background_words=YELP_BACKGROUND_WORDS,
    )


def generate(n_documents: int = 1500, seed: SeedLike = 24) -> GeneratedCorpus:
    """Generate a synthetic Yelp-reviews-style corpus."""
    return SyntheticCorpusGenerator(spec(n_documents), seed=seed).generate()
