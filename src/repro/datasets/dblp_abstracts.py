"""Synthetic stand-in for the DBLP abstracts dataset (529K CS abstracts).

Same five research-area topics as the paper's Table 4, but documents are
long, mixed-topic abstracts (several sentences), which is what makes the
expensive baselines (PD-LDA, Turbo Topics, KERT's unconstrained pattern
mining) intractable on the real corpus — and measurably slower here.
"""

from __future__ import annotations

from repro.datasets.dblp_titles import TOPICS
from repro.datasets.synthetic import (
    DatasetSpec,
    GeneratedCorpus,
    SyntheticCorpusGenerator,
)
from repro.utils.rng import SeedLike


def spec(n_documents: int = 1500) -> DatasetSpec:
    """Return the DBLP-abstracts dataset specification (long documents)."""
    return DatasetSpec(
        name="dblp-abstracts",
        topics=TOPICS,
        n_documents=n_documents,
        mean_document_slots=45.0,
        background_weight=0.18,
        connector_weight=0.40,
        sentence_slots=7,
        doc_topic_alpha=0.3,
    )


def generate(n_documents: int = 1500, seed: SeedLike = 22) -> GeneratedCorpus:
    """Generate a synthetic DBLP-abstracts-style corpus."""
    return SyntheticCorpusGenerator(spec(n_documents), seed=seed).generate()
