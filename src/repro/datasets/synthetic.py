"""Generic synthetic corpus generator with topical phrase structure.

The generator follows an LDA-style generative story extended with phrase
emissions:

1. every document draws a topic mixture ``θ_d ~ Dir(α)``;
2. tokens are emitted in *slots*: each slot picks a topic from ``θ_d`` and
   then either a whole collocation (multi-word phrase) or a single unigram
   from that topic's vocabulary, or a background word;
3. sentence punctuation is inserted between groups of slots so the generated
   text exercises the phrase-invariant chunk splitting of the real pipeline.

Because phrases are emitted atomically, their corpus frequency exceeds what
the independence null model predicts — they are true collocations — while
background words and cross-topic noise keep the mining problem non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.text.corpus import Corpus
from repro.text.preprocess import PreprocessConfig, Preprocessor
from repro.utils.rng import SeedLike, new_rng

# A compact pool of filler words used as background noise in every dataset.
DEFAULT_BACKGROUND_WORDS = (
    "approach results based new using study work case large small method "
    "general open good time people way day year part number point world "
    "area form end state group high level order line need place"
).split()

# Connector words re-inserted between slots so that stop-word removal has
# something realistic to strip out.
DEFAULT_CONNECTORS = ("the of and for with in on a an to from by".split())


@dataclass
class TopicSpec:
    """Specification of one latent topic of a synthetic dataset.

    Parameters
    ----------
    name:
        Human-readable topic label (e.g. ``"information retrieval"``).
    unigrams:
        Characteristic single words of the topic.
    phrases:
        Characteristic multi-word collocations of the topic (each a string of
        space-separated words).  These are emitted atomically.
    phrase_weight:
        Probability that a slot assigned to this topic emits a phrase rather
        than a unigram.
    """

    name: str
    unigrams: Sequence[str]
    phrases: Sequence[str]
    phrase_weight: float = 0.4

    def __post_init__(self) -> None:
        if not self.unigrams:
            raise ValueError(f"topic {self.name!r} needs at least one unigram")
        if not 0.0 <= self.phrase_weight <= 1.0:
            raise ValueError("phrase_weight must be in [0, 1]")


@dataclass
class DatasetSpec:
    """Specification of a full synthetic dataset.

    Parameters
    ----------
    name:
        Dataset name (e.g. ``"dblp-titles"``).
    topics:
        The latent topics.
    n_documents:
        Default number of documents to generate.
    mean_document_slots:
        Average number of emission slots per document (a slot produces one
        unigram or one phrase); documents lengths are Poisson around this.
    background_weight:
        Probability that a slot emits a background word instead of topical
        content.
    connector_weight:
        Probability of inserting a connector (stop) word after a slot.
    sentence_slots:
        Approximate number of slots per sentence before a period is emitted.
    doc_topic_alpha:
        Dirichlet concentration of the per-document topic mixture; small
        values make documents topically focused (titles), larger values make
        them mixed (abstracts, reviews).
    background_words, connectors:
        Vocabulary pools for noise; defaults shared across datasets.
    """

    name: str
    topics: Sequence[TopicSpec]
    n_documents: int = 1000
    mean_document_slots: float = 12.0
    background_weight: float = 0.15
    connector_weight: float = 0.35
    sentence_slots: int = 6
    doc_topic_alpha: float = 0.2
    background_words: Sequence[str] = field(default_factory=lambda: list(DEFAULT_BACKGROUND_WORDS))
    connectors: Sequence[str] = field(default_factory=lambda: list(DEFAULT_CONNECTORS))

    @property
    def n_topics(self) -> int:
        """Number of latent topics in the specification."""
        return len(self.topics)


@dataclass
class GeneratedCorpus:
    """A generated dataset: raw texts plus ground-truth bookkeeping.

    Attributes
    ----------
    texts:
        Raw document strings (input to the real preprocessing pipeline).
    document_topics:
        Ground-truth dominant topic index of every document.
    spec:
        The generating :class:`DatasetSpec`.
    """

    texts: List[str]
    document_topics: List[int]
    spec: DatasetSpec

    def __len__(self) -> int:
        return len(self.texts)

    def to_corpus(self, config: Optional[PreprocessConfig] = None) -> Corpus:
        """Run the standard preprocessing pipeline over the raw texts."""
        preprocessor = Preprocessor(config or PreprocessConfig())
        return preprocessor.build_corpus(self.texts, name=self.spec.name)


class SyntheticCorpusGenerator:
    """Generates documents from a :class:`DatasetSpec`."""

    def __init__(self, spec: DatasetSpec, seed: SeedLike = None) -> None:
        self.spec = spec
        self._rng = new_rng(seed)

    # -- public API ------------------------------------------------------------------
    def generate(self, n_documents: Optional[int] = None,
                 seed: SeedLike = None) -> GeneratedCorpus:
        """Generate ``n_documents`` raw documents (defaults to the spec's size).

        When ``seed`` is given the call uses a fresh generator derived from
        it, leaving the instance's own stream untouched — so one
        :class:`SyntheticCorpusGenerator` can produce several corpus sizes
        that are each independently reproducible (the benchmark harness
        relies on this).
        """
        spec = self.spec
        n_documents = n_documents or spec.n_documents
        alpha = np.full(spec.n_topics, spec.doc_topic_alpha)
        rng = self._rng if seed is None else new_rng(seed)

        texts: List[str] = []
        dominant_topics: List[int] = []
        for _ in range(n_documents):
            theta = rng.dirichlet(alpha)
            dominant_topics.append(int(np.argmax(theta)))
            texts.append(self._generate_document(theta, rng))
        return GeneratedCorpus(texts=texts, document_topics=dominant_topics, spec=spec)

    def generate_corpus(self, n_documents: Optional[int] = None,
                        config: Optional[PreprocessConfig] = None,
                        seed: SeedLike = None) -> Corpus:
        """Generate and immediately preprocess into a :class:`Corpus`."""
        return self.generate(n_documents, seed=seed).to_corpus(config)

    # -- internals --------------------------------------------------------------------
    def _generate_document(self, theta: np.ndarray, rng: np.random.Generator) -> str:
        spec = self.spec
        n_slots = max(2, int(rng.poisson(spec.mean_document_slots)))

        words: List[str] = []
        slots_in_sentence = 0
        for _ in range(n_slots):
            roll = rng.random()
            if roll < spec.background_weight:
                words.append(str(rng.choice(spec.background_words)))
            else:
                topic = spec.topics[self._sample_topic(theta, rng)]
                if rng.random() < topic.phrase_weight and topic.phrases:
                    phrase = str(rng.choice(topic.phrases))
                    words.extend(phrase.split())
                else:
                    words.append(str(rng.choice(topic.unigrams)))
            # optional connector (stop word) between slots
            if rng.random() < spec.connector_weight:
                words.append(str(rng.choice(spec.connectors)))
            slots_in_sentence += 1
            if slots_in_sentence >= spec.sentence_slots:
                if words:
                    words[-1] = words[-1] + "."
                slots_in_sentence = 0
        text = " ".join(words).strip()
        if not text.endswith("."):
            text += "."
        return text

    def _sample_topic(self, theta: np.ndarray, rng: np.random.Generator) -> int:
        return int(rng.choice(len(theta), p=theta))
