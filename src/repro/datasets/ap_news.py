"""Synthetic stand-in for the TREC AP News (1989) dataset (106K articles).

Topics and phrases follow the paper's Table 5: environment/energy,
Christianity, the Palestine/Israel conflict, the (senior) Bush
administration, and health care.  Documents are long, multi-sentence
articles with mixed topics.
"""

from __future__ import annotations

from repro.datasets.synthetic import (
    DatasetSpec,
    GeneratedCorpus,
    SyntheticCorpusGenerator,
    TopicSpec,
)
from repro.utils.rng import SeedLike

TOPICS = [
    TopicSpec(
        name="environment and energy",
        unigrams=["plant", "nuclear", "environmental", "energy", "waste",
                  "power", "chemical", "state", "department", "water"],
        phrases=["energy department", "environmental protection agency",
                 "nuclear weapons", "acid rain", "nuclear power plant",
                 "hazardous waste", "savannah river", "natural gas",
                 "nuclear power", "rocky flats"],
    ),
    TopicSpec(
        name="christianity",
        unigrams=["church", "catholic", "religious", "bishop", "pope",
                  "roman", "jewish", "rev", "john", "christian"],
        phrases=["roman catholic", "pope john paul", "catholic church",
                 "anti semitism", "baptist church", "lutheran church",
                 "episcopal church", "church members", "john paul"],
    ),
    TopicSpec(
        name="israel and palestine",
        unigrams=["palestinian", "israeli", "israel", "arab", "plo",
                  "army", "west", "bank", "state", "territories"],
        phrases=["gaza strip", "west bank", "palestine liberation organization",
                 "united states", "arab reports", "prime minister",
                 "israel radio", "occupied territories", "occupied west bank",
                 "yitzhak shamir"],
    ),
    TopicSpec(
        name="bush administration",
        unigrams=["bush", "house", "senate", "year", "bill", "president",
                  "congress", "tax", "budget", "committee"],
        phrases=["president bush", "white house", "bush administration",
                 "house and senate", "members of congress", "capital gains tax",
                 "defense secretary", "pay raise", "house members",
                 "committee chairman"],
    ),
    TopicSpec(
        name="health care",
        unigrams=["drug", "aid", "health", "hospital", "medical",
                  "patients", "research", "test", "study", "disease"],
        phrases=["health care", "medical center", "aids virus", "drug abuse",
                 "food and drug administration", "aids patient",
                 "centers for disease control", "heart disease",
                 "drug testing", "united states"],
    ),
]


def spec(n_documents: int = 1200) -> DatasetSpec:
    """Return the AP-News dataset specification (long news articles)."""
    return DatasetSpec(
        name="ap-news",
        topics=TOPICS,
        n_documents=n_documents,
        mean_document_slots=50.0,
        background_weight=0.20,
        connector_weight=0.45,
        sentence_slots=7,
        doc_topic_alpha=0.25,
    )


def generate(n_documents: int = 1200, seed: SeedLike = 23) -> GeneratedCorpus:
    """Generate a synthetic AP-News-style corpus."""
    return SyntheticCorpusGenerator(spec(n_documents), seed=seed).generate()
