"""Flat-buffer collapsed Gibbs engines shared by LDA and PhraseLDA.

The readable reference samplers in :mod:`repro.topicmodel.lda` and
:mod:`repro.core.phrase_lda` walk nested Python lists and pay NumPy's
per-call overhead for every token.  The engines here restructure the
problem once at ``fit()`` time:

* :class:`FlatPhraseCorpus` flattens the corpus into contiguous buffers —
  token ids (int32), clique boundary offsets, and per-document clique
  ranges — so the samplers never touch Python object graphs in the hot
  loop;
* :class:`VectorizedGibbsSampler` is a pure-NumPy sampler that keeps the
  count matrices as *float factor arrays* with the Dirichlet priors baked
  in (``wfac = beta + N_wk``, the ``n_z_t`` idiom), computes each clique
  posterior with row gathers instead of per-token Python arithmetic, and
  draws topics by cumulative-sum inverse-CDF sampling against uniforms
  pre-drawn once per sweep;
* :class:`CKernelSampler` drives the optional C sweep kernel
  (:mod:`repro.topicmodel.ckernel`) over the same flat buffers, and is
  bit-exact with the reference samplers.

Both engines consume the random stream in exactly the same order as the
reference samplers — one ``rng.integers`` call per document at
initialisation, one uniform per clique per sweep — so a fixed seed produces
identical topic assignments across all engines (a property the test suite
asserts).

Engine selection: ``"auto"`` picks the C kernel when a compiler is
available and the NumPy sampler otherwise; ``"c"``, ``"numpy"`` and
``"reference"`` force a specific implementation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.topicmodel import ckernel

ENGINES = ("auto", "c", "numpy", "reference")


def resolve_engine(engine: str) -> str:
    """Map an engine request onto a concrete engine name.

    ``"auto"`` resolves to ``"c"`` when the compiled kernel is available and
    to ``"numpy"`` otherwise.  Explicit requests are validated: asking for
    ``"c"`` without a working compiler raises immediately rather than
    silently running something slower.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine == "auto":
        return "c" if ckernel.kernel_available() else "numpy"
    if engine == "c" and not ckernel.kernel_available():
        raise RuntimeError(
            f"engine='c' requested but the kernel is unavailable "
            f"({ckernel.load_error()}); use engine='auto' to fall back")
    return engine


class FlatPhraseCorpus:
    """A segmented corpus flattened into contiguous sampling buffers.

    Attributes
    ----------
    tokens:
        ``int32`` array of all token ids, document- then clique-major.
    offsets:
        ``int64`` array of length ``n_cliques + 1``; clique ``g`` covers
        ``tokens[offsets[g]:offsets[g + 1]]``.
    clique_doc:
        ``int32`` document index of every clique.
    doc_ranges:
        Per-document ``(first_clique, last_clique_exclusive)`` pairs.
    """

    __slots__ = ("tokens", "offsets", "clique_doc", "doc_ranges",
                 "n_cliques", "n_sampled", "n_tokens", "n_docs",
                 "max_clique_size", "_token_list", "_offset_list")

    def __init__(self, phrase_docs: Sequence[Sequence[Sequence[int]]]) -> None:
        token_list: List[int] = []
        offset_list: List[int] = [0]
        clique_doc: List[int] = []
        doc_ranges: List[Tuple[int, int]] = []
        max_size = 0
        n_sampled = 0
        for d, phrases in enumerate(phrase_docs):
            start = len(offset_list) - 1
            for phrase in phrases:
                # Empty phrases keep their clique slot (so per-document
                # assignment arrays stay aligned with ``doc.phrases``) but
                # are never sampled, exactly like the reference sampler.
                token_list.extend(phrase)
                offset_list.append(len(token_list))
                clique_doc.append(d)
                if len(phrase) > max_size:
                    max_size = len(phrase)
                if phrase:
                    n_sampled += 1
            doc_ranges.append((start, len(offset_list) - 1))
        self.tokens = np.asarray(token_list, dtype=np.int32)
        self.offsets = np.asarray(offset_list, dtype=np.int64)
        self.clique_doc = np.asarray(clique_doc, dtype=np.int32)
        self.doc_ranges = doc_ranges
        self.n_cliques = len(offset_list) - 1
        self.n_sampled = n_sampled
        self.n_tokens = len(token_list)
        self.n_docs = len(phrase_docs)
        self.max_clique_size = max_size
        self._token_list = None
        self._offset_list = None

    @classmethod
    def from_token_docs(cls, token_docs: Sequence[Sequence[int]]) -> "FlatPhraseCorpus":
        """Build the all-singleton flattening of bag-of-words documents.

        Every token is its own clique, which makes the engines sample
        standard collapsed-Gibbs LDA ("LDA is a special case of PhraseLDA").
        """
        flat = cls.__new__(cls)
        token_list: List[int] = []
        doc_ranges: List[Tuple[int, int]] = []
        clique_doc: List[int] = []
        for d, doc in enumerate(token_docs):
            start = len(token_list)
            token_list.extend(int(w) for w in doc)
            doc_ranges.append((start, len(token_list)))
            clique_doc.extend([d] * (len(token_list) - start))
        flat.tokens = np.asarray(token_list, dtype=np.int32)
        flat.offsets = np.arange(len(token_list) + 1, dtype=np.int64)
        flat.clique_doc = np.asarray(clique_doc, dtype=np.int32)
        flat.doc_ranges = doc_ranges
        flat.n_cliques = len(token_list)
        flat.n_sampled = len(token_list)
        flat.n_tokens = len(token_list)
        flat.n_docs = len(token_docs)
        flat.max_clique_size = 1 if token_list else 0
        flat._token_list = None
        flat._offset_list = None
        return flat

    @property
    def token_list(self) -> List[int]:
        """Token ids as a Python list (lazy; only the NumPy sampler needs
        list-speed scalar access — the C engine never materialises this)."""
        if self._token_list is None:
            self._token_list = self.tokens.tolist()
        return self._token_list

    @property
    def offset_list(self) -> List[int]:
        """Clique offsets as a Python list (lazy, see :attr:`token_list`)."""
        if self._offset_list is None:
            self._offset_list = self.offsets.tolist()
        return self._offset_list

    def clique_sizes(self) -> np.ndarray:
        """Length of every clique, as an ``int64`` array."""
        return np.diff(self.offsets)


def random_initialization(flat: FlatPhraseCorpus, n_topics: int,
                          vocabulary_size: int, rng: np.random.Generator,
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Draw one topic per clique and build the count matrices.

    Consumes the random stream exactly like the reference samplers: one
    ``rng.integers(0, K, size=n_cliques_of_doc)`` call per document, in
    document order.  Counting is vectorized with ``np.add.at``/``bincount``
    over the flat buffers.

    Returns ``(topic_word, doc_topic, topic_totals, assign)`` with the same
    dtypes and layouts the reference samplers use.
    """
    # np.add.at rejects ids >= V below, but negative ids would silently
    # wrap here and corrupt memory inside the C kernel — refuse both.
    _check_token_range(flat.tokens, vocabulary_size)
    assign = np.empty(flat.n_cliques, dtype=np.int64)
    for g0, g1 in flat.doc_ranges:
        assign[g0:g1] = rng.integers(0, n_topics, size=g1 - g0)

    sizes = flat.clique_sizes()
    token_topics = np.repeat(assign, sizes)
    token_docs = np.repeat(flat.clique_doc.astype(np.int64), sizes)

    topic_word = np.zeros((vocabulary_size, n_topics), dtype=np.int64)
    doc_topic = np.zeros((flat.n_docs, n_topics), dtype=np.int64)
    np.add.at(topic_word, (flat.tokens.astype(np.int64), token_topics), 1)
    np.add.at(doc_topic, (token_docs, token_topics), 1)
    topic_totals = np.bincount(token_topics, minlength=n_topics).astype(np.int64)
    return topic_word, doc_topic, topic_totals, assign


class CKernelSampler:
    """Gibbs sweeps via the compiled C kernel, mutating the count arrays
    (``int64``, shared with the caller's state object) in place."""

    name = "c"

    def __init__(self, flat: FlatPhraseCorpus, topic_word: np.ndarray,
                 doc_topic: np.ndarray, topic_totals: np.ndarray,
                 assign: np.ndarray, alpha: np.ndarray, beta: float) -> None:
        self.flat = flat
        self.topic_word = topic_word
        self.doc_topic = doc_topic
        self.topic_totals = topic_totals
        self.assign = assign
        self.n_topics = topic_word.shape[1]
        self.vocabulary_size = topic_word.shape[0]
        self.alpha = np.ascontiguousarray(alpha, dtype=np.float64)
        self.beta = float(beta)
        self._scratch = np.empty(self.n_topics, dtype=np.float64)

    def rebuild(self, alpha: np.ndarray, beta: float) -> None:
        """Adopt new hyper-parameters (after Minka fixed-point updates)."""
        self.alpha = np.ascontiguousarray(alpha, dtype=np.float64)
        self.beta = float(beta)

    def sweep(self, rng: np.random.Generator) -> None:
        """One full Gibbs sweep over every clique."""
        if self.flat.n_sampled == 0:
            return
        uniforms = rng.random(self.flat.n_sampled)
        ckernel.run_sweep(
            self.flat.tokens, self.flat.offsets, self.flat.clique_doc,
            self.n_topics, self.alpha, self.beta,
            self.beta * self.vocabulary_size,
            self.topic_word, self.doc_topic, self.topic_totals,
            self.assign, uniforms, self._scratch)

    def sync_counts(self) -> None:
        """No-op: the kernel mutates the integer count arrays directly."""


class VectorizedGibbsSampler:
    """Pure-NumPy Gibbs sweeps over the flat buffers.

    The sampler keeps three float *factor* arrays with the priors baked in,
    mutated in place as cliques are reassigned (the copulaLDA idiom):

    * ``wfac[w, k] = beta + N_wk`` — gathered per clique as contiguous rows;
    * ``dfac[d, k] = alpha_k + N_dk``;
    * ``tfac[k] = beta * V + N_k``.

    Per document it maintains ``ratio = dfac[d] / tfac`` (and ``ratio1``,
    the same quantity shifted by one — the ``j = 1`` term of Eq. 7) so a
    singleton clique posterior is a single elementwise product and a
    two-token clique three products; topics are then drawn by inverse-CDF
    against a per-sweep batch of uniforms.  The integer count matrices of
    the caller's state are refreshed from the factor arrays on demand by
    :meth:`sync_counts`.
    """

    name = "numpy"

    def __init__(self, flat: FlatPhraseCorpus, topic_word: np.ndarray,
                 doc_topic: np.ndarray, topic_totals: np.ndarray,
                 assign: np.ndarray, alpha: np.ndarray, beta: float) -> None:
        self.flat = flat
        self.topic_word = topic_word
        self.doc_topic = doc_topic
        self.topic_totals = topic_totals
        self.assign = assign
        self.n_topics = topic_word.shape[1]
        self.vocabulary_size = topic_word.shape[0]
        self.rebuild(alpha, beta)

    def rebuild(self, alpha: np.ndarray, beta: float) -> None:
        """(Re)derive the float factor arrays from the integer counts."""
        self.alpha = np.asarray(alpha, dtype=np.float64)
        self.beta = float(beta)
        self.wfac = self.topic_word + self.beta
        self.dfac = self.doc_topic + self.alpha[None, :]
        self.tfac = self.topic_totals + self.beta * self.vocabulary_size

    def sync_counts(self) -> None:
        """Write the integer counts implied by the factor arrays back into
        the shared state arrays (rounded, so ulp drift cannot leak)."""
        np.copyto(self.topic_word, np.rint(self.wfac - self.beta),
                  casting="unsafe")
        np.copyto(self.doc_topic, np.rint(self.dfac - self.alpha[None, :]),
                  casting="unsafe")
        np.copyto(self.topic_totals,
                  np.rint(self.tfac - self.beta * self.vocabulary_size),
                  casting="unsafe")

    def sweep(self, rng: np.random.Generator) -> None:
        """One full Gibbs sweep over every clique.

        The loop is written for minimal per-clique overhead: all arrays are
        bound to locals, scalar bookkeeping uses Python lists where NumPy
        indexing would dominate, and every elementwise operation writes into
        a preallocated buffer.
        """
        flat = self.flat
        if flat.n_sampled == 0:
            return
        K = self.n_topics
        tokens = flat.token_list
        offsets = flat.offset_list
        wfac, dfac, tfac = self.wfac, self.dfac, self.tfac
        assign_list = self.assign.tolist()
        us = rng.random(flat.n_sampled).tolist()
        next_uniform = 0

        buf = np.empty(K)
        cum = np.empty(K)
        dbuf = np.empty(K)
        tbuf = np.empty(K)
        ratio1 = np.empty(K)
        mul = np.multiply
        div = np.divide
        add = np.add
        acc = np.add.accumulate
        last = K - 1

        for d, (g0, g1) in enumerate(flat.doc_ranges):
            if g0 == g1:
                continue
            dfr = dfac[d]
            ratio = div(dfr, tfac)
            add(dfr, 1.0, dbuf)
            add(tfac, 1.0, tbuf)
            div(dbuf, tbuf, ratio1)
            for g in range(g0, g1):
                t0 = offsets[g]
                size = offsets[g + 1] - t0
                k_old = assign_list[g]
                if size == 1:
                    # -- singleton fast path: one gather, one product -----
                    wfr = wfac[tokens[t0]]
                    wfr[k_old] -= 1.0
                    d_ko = dfr[k_old] - 1.0
                    t_ko = tfac[k_old] - 1.0
                    dfr[k_old] = d_ko
                    tfac[k_old] = t_ko
                    ratio[k_old] = d_ko / t_ko
                    ratio1[k_old] = (d_ko + 1.0) / (t_ko + 1.0)
                    mul(ratio, wfr, buf)
                    acc(buf, 0, None, cum)
                    k_new = int(cum.searchsorted(us[next_uniform] * cum[last]))
                    next_uniform += 1
                    wfr[k_new] += 1.0
                    d_kn = dfr[k_new] + 1.0
                    t_kn = tfac[k_new] + 1.0
                    dfr[k_new] = d_kn
                    tfac[k_new] = t_kn
                    ratio[k_new] = d_kn / t_kn
                    ratio1[k_new] = (d_kn + 1.0) / (t_kn + 1.0)
                    assign_list[g] = k_new
                elif size == 0:
                    # Empty clique: keeps its assignment slot, never sampled
                    # (mirrors the reference sampler's `continue`).
                    continue
                else:
                    # -- multi-token clique: Eq. 7 product via row views --
                    sf = float(size)
                    ws = tokens[t0:t0 + size]
                    for w in ws:
                        wfac[w, k_old] -= 1.0
                    d_ko = dfr[k_old] - sf
                    t_ko = tfac[k_old] - sf
                    dfr[k_old] = d_ko
                    tfac[k_old] = t_ko
                    ratio[k_old] = d_ko / t_ko
                    ratio1[k_old] = (d_ko + 1.0) / (t_ko + 1.0)
                    mul(ratio, wfac[ws[0]], buf)
                    mul(buf, ratio1, buf)
                    mul(buf, wfac[ws[1]], buf)
                    for j in range(2, size):
                        jf = float(j)
                        add(dfr, jf, dbuf)
                        mul(buf, dbuf, buf)
                        mul(buf, wfac[ws[j]], buf)
                        add(tfac, jf, tbuf)
                        div(buf, tbuf, buf)
                    acc(buf, 0, None, cum)
                    k_new = int(cum.searchsorted(us[next_uniform] * cum[last]))
                    next_uniform += 1
                    for w in ws:
                        wfac[w, k_new] += 1.0
                    d_kn = dfr[k_new] + sf
                    t_kn = tfac[k_new] + sf
                    dfr[k_new] = d_kn
                    tfac[k_new] = t_kn
                    ratio[k_new] = d_kn / t_kn
                    ratio1[k_new] = (d_kn + 1.0) / (t_kn + 1.0)
                    assign_list[g] = k_new
        self.assign[:] = assign_list


def _check_token_range(tokens: np.ndarray, vocabulary_size: int) -> None:
    """Raise ``ValueError`` unless every token id lies in ``[0, V)``."""
    if tokens.size:
        lowest = int(tokens.min())
        highest = int(tokens.max())
        if lowest < 0 or highest >= vocabulary_size:
            raise ValueError(
                f"token ids must be in [0, {vocabulary_size}); "
                f"got range [{lowest}, {highest}]")


def validate_fold_in_input(flat: FlatPhraseCorpus, alpha: np.ndarray,
                           beta: float, vocabulary_size: int) -> None:
    """Reject degenerate priors and out-of-range token ids for fold-in.

    The single validation shared by :class:`FoldInSampler` and the
    reference fold-in loop in :mod:`repro.core.infer`, so both engines are
    equally strict and the error messages cannot drift.

    Raises
    ------
    ValueError
        If ``beta`` or any ``alpha`` entry is non-positive (a clique
        posterior could then have zero mass), or if any token id falls
        outside ``[0, vocabulary_size)``.
    """
    if beta <= 0 or np.any(np.asarray(alpha) <= 0):
        raise ValueError(
            f"fold-in requires alpha > 0 and beta > 0 (got alpha min "
            f"{float(np.min(alpha))}, beta {beta}), so every clique "
            f"posterior has positive mass")
    _check_token_range(flat.tokens, vocabulary_size)


class FoldInSampler:
    """Gibbs fold-in for *unseen* documents against a frozen topic model.

    Fold-in keeps the trained topic-word statistics fixed and resamples only
    the new documents' clique assignments, which is the standard way to
    estimate ``θ`` for held-out text without retraining (the clique-aware
    generalisation of :meth:`LatentDirichletAllocation.infer_document_topics`).
    The per-clique conditional is Eq. 7 with the word and topic-total factors
    frozen at their trained values::

        p(C_{d,g} = k) ∝ Π_{j=1}^{W_{d,g}}
            (α_k + n_{d,k} + j − 1) ·
            (β + N_{w_j,k}) / (Σ_x β_x + N_k + j − 1)

    where ``n_{d,k}`` counts only the *new* document's tokens.  The sampler
    reuses the :class:`FlatPhraseCorpus` buffers, gathers the frozen
    ``wfac = β + N_wk`` rows per clique, and draws topics by inverse-CDF
    sampling against per-sweep batched uniforms — the same structure as
    :class:`VectorizedGibbsSampler`, minus all count mutation except the
    local document counts.

    The random stream is consumed exactly like the training engines (one
    ``rng.integers`` call per document at initialisation, one uniform per
    non-empty clique per sweep), so a fixed seed gives identical fold-in
    assignments across the ``numpy`` and ``reference`` inference engines.

    Parameters
    ----------
    flat:
        Flattened unseen documents (already segmented with the *frozen*
        phrase table).
    topic_word_counts, topic_counts:
        Trained ``V × K`` and length-``K`` count arrays; never mutated.
    alpha:
        Length-``K`` document-topic prior (the trained model's final α).
    beta:
        Symmetric topic-word prior β.
    """

    name = "fold-in"

    def __init__(self, flat: FlatPhraseCorpus, topic_word_counts: np.ndarray,
                 topic_counts: np.ndarray, alpha: np.ndarray, beta: float) -> None:
        n_topics = topic_word_counts.shape[1]
        vocabulary_size = topic_word_counts.shape[0]
        validate_fold_in_input(flat, alpha, beta, vocabulary_size)
        self.flat = flat
        self.n_topics = n_topics
        self.vocabulary_size = vocabulary_size
        self.alpha = np.asarray(alpha, dtype=np.float64)
        self.beta = float(beta)
        # Frozen factors of the trained model (never written).
        self.wfac = topic_word_counts + self.beta
        self.tfac = topic_counts + self.beta * vocabulary_size
        self.doc_topic = np.zeros((flat.n_docs, n_topics), dtype=np.int64)
        self.assign = np.empty(flat.n_cliques, dtype=np.int64)

    def initialize(self, rng: np.random.Generator) -> None:
        """Draw one topic per clique and (re)build the local document counts.

        Parameters
        ----------
        rng:
            Generator supplying one ``integers`` draw per document, matching
            the training engines' initialisation stream.
        """
        flat = self.flat
        for g0, g1 in flat.doc_ranges:
            self.assign[g0:g1] = rng.integers(0, self.n_topics, size=g1 - g0)
        sizes = flat.clique_sizes()
        token_topics = np.repeat(self.assign, sizes)
        token_docs = np.repeat(flat.clique_doc.astype(np.int64), sizes)
        self.doc_topic[:] = 0
        np.add.at(self.doc_topic, (token_docs, token_topics), 1)

    def sweep(self, rng: np.random.Generator) -> None:
        """Resample every clique of every unseen document once.

        The per-clique posterior is evaluated with exactly the reference
        loop's elementwise operation order (numerator multiply, word-factor
        multiply, denominator divide, per token), so the two inference
        engines agree bit-for-bit, not just to rounding.
        """
        flat = self.flat
        if flat.n_sampled == 0:
            return
        K = self.n_topics
        tokens = flat.token_list
        offsets = flat.offset_list
        wfac, tfac = self.wfac, self.tfac
        doc_topic = self.doc_topic
        assign_list = self.assign.tolist()
        us = rng.random(flat.n_sampled).tolist()
        next_uniform = 0

        buf = np.empty(K)
        cum = np.empty(K)
        dfr = np.empty(K)
        dbuf = np.empty(K)
        tbuf = np.empty(K)
        mul = np.multiply
        div = np.divide
        add = np.add
        acc = np.add.accumulate
        last = K - 1
        alpha = self.alpha

        for d, (g0, g1) in enumerate(flat.doc_ranges):
            if g0 == g1:
                continue
            local = doc_topic[d]
            for g in range(g0, g1):
                t0 = offsets[g]
                size = offsets[g + 1] - t0
                if size == 0:
                    # Empty clique: keeps its slot, never sampled.
                    continue
                k_old = assign_list[g]
                local[k_old] -= size
                # Fresh float base per clique (exactly the reference's
                # ``alpha + local`` term — no incremental float drift).
                add(local, alpha, dfr)
                mul(dfr, wfac[tokens[t0]], buf)
                div(buf, tfac, buf)
                for j in range(1, size):
                    jf = float(j)
                    add(dfr, jf, dbuf)
                    mul(buf, dbuf, buf)
                    mul(buf, wfac[tokens[t0 + j]], buf)
                    add(tfac, jf, tbuf)
                    div(buf, tbuf, buf)
                acc(buf, 0, None, cum)
                u = us[next_uniform]
                next_uniform += 1
                total = cum[last]
                if total > 0.0:
                    k_new = int(cum.searchsorted(u * total))
                else:
                    # Long cliques against huge models can underflow the
                    # Eq. 7 product to exactly 0: fall back to a uniform
                    # draw from the same consumed uniform (matching the
                    # reference fold-in, keeping the engines bit-identical).
                    k_new = min(int(u * K), last)
                local[k_new] += size
                assign_list[g] = k_new
        self.assign[:] = assign_list

    def theta(self) -> np.ndarray:
        """Posterior document-topic estimate ``θ̂`` for the folded-in docs.

        Returns
        -------
        numpy.ndarray
            ``D × K`` row-normalised ``(α_k + n_{d,k}) / Σ_k (α_k + n_{d,k})``.
        """
        theta = self.doc_topic + self.alpha[None, :]
        return theta / theta.sum(axis=1, keepdims=True)


class BatchFoldInSampler:
    """Cross-document vectorized Gibbs fold-in over a frozen topic model.

    :class:`FoldInSampler` walks one clique at a time in a Python loop.
    Fold-in documents are statistically *independent* of each other — only
    the per-document counts ``n_{d,k}`` change between sweeps, never the
    frozen topic-word statistics — so cliques of *different* documents can
    be resampled simultaneously.  This sampler exploits that: cliques are
    grouped into *slots* (slot ``s`` holds every document's ``s``-th
    non-empty clique), and each slot is resampled with one batched NumPy
    pass over all active documents.  Per sweep the Python-level work drops
    from ``O(total cliques)`` to ``O(max cliques per document)`` iterations,
    which is the measurable multi-document speedup behind the ``"batch"``
    inference engine and the serving layer's micro-batching scheduler.

    **Bit-exactness.**  Every elementwise operation is applied in the same
    order with the same operands as :class:`FoldInSampler` (posterior
    products per Eq. 7, row-wise cumulative sums, inverse-CDF draws, the
    underflow fallback), and float64 elementwise NumPy ops are deterministic
    per element regardless of batching — so a slot-parallel sweep produces
    exactly the assignments the sequential sampler would.

    **Independent request streams.**  Documents are partitioned into
    *groups* (one per client request in the serving scenario); each group
    consumes its own :class:`numpy.random.Generator` exactly like a solo
    :class:`FoldInSampler` run over just that group's documents (one
    ``integers`` draw per document at initialisation, one ``random`` batch
    of that group's non-empty-clique count per sweep).  A batched pass over
    many requests with per-request seeds is therefore bit-identical to
    running each request alone with its seed — the property the serving
    tests pin.

    Parameters
    ----------
    flat:
        Flattened unseen documents (already segmented with the frozen
        phrase table), covering *all* groups back to back.
    topic_word_counts, topic_counts:
        Trained ``V × K`` and length-``K`` count arrays; never mutated.
    alpha, beta:
        The trained model's Dirichlet hyper-parameters.
    group_doc_ranges:
        ``(doc_start, doc_end)`` per group, partitioning ``flat``'s
        documents in order.  Defaults to a single group covering everything
        (the single-request case of the ``"batch"`` engine).
    """

    name = "batch"

    def __init__(self, flat: FlatPhraseCorpus, topic_word_counts: np.ndarray,
                 topic_counts: np.ndarray, alpha: np.ndarray, beta: float,
                 group_doc_ranges: Sequence[Tuple[int, int]] = None) -> None:
        n_topics = topic_word_counts.shape[1]
        vocabulary_size = topic_word_counts.shape[0]
        validate_fold_in_input(flat, alpha, beta, vocabulary_size)
        if group_doc_ranges is None:
            group_doc_ranges = [(0, flat.n_docs)]
        self._validate_groups(group_doc_ranges, flat.n_docs)
        self.flat = flat
        self.n_topics = n_topics
        self.vocabulary_size = vocabulary_size
        self.alpha = np.asarray(alpha, dtype=np.float64)
        self.beta = float(beta)
        self.group_doc_ranges = [(int(a), int(b)) for a, b in group_doc_ranges]
        # Frozen factors of the trained model (never written).
        self.wfac = topic_word_counts + self.beta
        self.tfac = topic_counts + self.beta * vocabulary_size
        self.doc_topic = np.zeros((flat.n_docs, n_topics), dtype=np.int64)
        self.assign = np.empty(flat.n_cliques, dtype=np.int64)
        self._build_slots()

    @staticmethod
    def _validate_groups(ranges: Sequence[Tuple[int, int]], n_docs: int) -> None:
        """Require ``ranges`` to partition ``[0, n_docs)`` in order."""
        expected = 0
        for a, b in ranges:
            if a != expected or b < a:
                raise ValueError(
                    f"group_doc_ranges must partition [0, {n_docs}) in "
                    f"order; got {list(ranges)}")
            expected = b
        if expected != n_docs:
            raise ValueError(
                f"group_doc_ranges cover [0, {expected}) but the corpus has "
                f"{n_docs} documents")

    def _build_slots(self) -> None:
        """Precompute the slot structure driving the vectorized sweeps.

        Slot ``s`` gathers the ``s``-th *non-empty* clique of every document
        (documents with fewer cliques simply drop out), sorted by descending
        clique size so the per-token Eq. 7 loop can operate on shrinking
        contiguous prefixes instead of boolean masks.  Each clique also gets
        a precomputed index into the per-sweep uniform buffer: uniforms are
        drawn per *group* in document order, skipping empty cliques —
        exactly the order a solo :class:`FoldInSampler` run over that group
        would consume them in.
        """
        flat = self.flat
        sizes = flat.clique_sizes()
        uniform_index = np.full(flat.n_cliques, -1, dtype=np.int64)
        group_sampled: List[int] = []
        group_starts: List[int] = []
        per_doc: List[List[int]] = [[] for _ in range(flat.n_docs)]
        base = 0
        for doc_start, doc_end in self.group_doc_ranges:
            group_starts.append(base)
            cursor = 0
            for d in range(doc_start, doc_end):
                g0, g1 = flat.doc_ranges[d]
                for g in range(g0, g1):
                    if sizes[g] == 0:
                        continue
                    uniform_index[g] = base + cursor
                    cursor += 1
                    per_doc[d].append(g)
            group_sampled.append(cursor)
            base += cursor
        self._group_sampled = group_sampled
        self._group_starts = group_starts
        self._total_sampled = base

        max_slots = max((len(cliques) for cliques in per_doc), default=0)
        slots = []
        for s in range(max_slots):
            ids = np.asarray([cliques[s] for cliques in per_doc
                              if len(cliques) > s], dtype=np.int64)
            slot_sizes = sizes[ids]
            order = np.argsort(-slot_sizes, kind="stable")
            ids = ids[order]
            slot_sizes = slot_sizes[order]
            # size_prefix[j] = number of cliques in this slot with > j tokens
            # (valid rows for the j-th factor of Eq. 7, given the sort).
            max_size = int(slot_sizes[0]) if len(slot_sizes) else 0
            size_prefix = [int(np.searchsorted(-slot_sizes, -j, side="left"))
                           for j in range(max_size + 1)]
            slots.append({
                "ids": ids,
                "docs": flat.clique_doc[ids].astype(np.int64),
                "sizes": slot_sizes,
                "first": flat.offsets[ids],
                "uniform": uniform_index[ids],
                "size_prefix": size_prefix,
                "max_size": max_size,
            })
        self._slots = slots

    def initialize(self, rngs: Sequence[np.random.Generator]) -> None:
        """Draw one topic per clique and (re)build the local document counts.

        Parameters
        ----------
        rngs:
            One generator per group, each consuming one ``integers`` draw
            per document of its group (the solo initialisation stream).
        """
        flat = self.flat
        if len(rngs) != len(self.group_doc_ranges):
            raise ValueError(f"expected {len(self.group_doc_ranges)} "
                             f"generators, got {len(rngs)}")
        for rng, (doc_start, doc_end) in zip(rngs, self.group_doc_ranges):
            for d in range(doc_start, doc_end):
                g0, g1 = flat.doc_ranges[d]
                self.assign[g0:g1] = rng.integers(0, self.n_topics, size=g1 - g0)
        sizes = flat.clique_sizes()
        token_topics = np.repeat(self.assign, sizes)
        token_docs = np.repeat(flat.clique_doc.astype(np.int64), sizes)
        self.doc_topic[:] = 0
        np.add.at(self.doc_topic, (token_docs, token_topics), 1)

    def sweep(self, rngs: Sequence[np.random.Generator]) -> None:
        """Resample every clique once, slot-parallel across documents.

        Per group, the sweep's uniforms are drawn up front from that group's
        generator (``rng.random(n_sampled)``, the solo stream); slots then
        consume them via the precomputed per-clique indices, so computation
        order never affects which uniform a clique sees.
        """
        if len(rngs) != len(self.group_doc_ranges):
            raise ValueError(f"expected {len(self.group_doc_ranges)} "
                             f"generators, got {len(rngs)}")
        if self._total_sampled == 0:
            return
        K = self.n_topics
        alpha, wfac, tfac = self.alpha, self.wfac, self.tfac
        tokens = self.flat.tokens
        local = self.doc_topic
        assign = self.assign

        uniforms = np.empty(self._total_sampled, dtype=np.float64)
        for rng, start, count in zip(rngs, self._group_starts,
                                     self._group_sampled):
            uniforms[start:start + count] = rng.random(count)

        for slot in self._slots:
            ids = slot["ids"]
            docs = slot["docs"]
            sizes = slot["sizes"]
            k_old = assign[ids]
            local[docs, k_old] -= sizes
            # Fresh float base per clique (the reference's ``alpha + local``
            # term), then the Eq. 7 factors in the sequential samplers' exact
            # elementwise order: numerator multiply, word-factor multiply,
            # denominator divide, per token.
            dfr = local[docs] + alpha[None, :]
            buf = dfr * wfac[tokens[slot["first"]]]
            buf /= tfac[None, :]
            prefix = slot["size_prefix"]
            for j in range(1, slot["max_size"]):
                nj = prefix[j]
                jf = float(j)
                active = buf[:nj]
                active *= dfr[:nj] + jf
                active *= wfac[tokens[slot["first"][:nj] + j]]
                active /= tfac[None, :] + jf
            cum = np.cumsum(buf, axis=1)
            total = cum[:, K - 1]
            u = uniforms[slot["uniform"]]
            k_new = np.sum(cum < (u * total)[:, None], axis=1)
            underflowed = ~(total > 0.0)
            if underflowed.any():
                # Same uniform fallback as the sequential engines: an
                # underflowed posterior draws uniformly from the consumed u.
                k_new[underflowed] = np.minimum(
                    (u[underflowed] * K).astype(np.int64), K - 1)
            local[docs, k_new] += sizes
            assign[ids] = k_new

    def theta(self) -> np.ndarray:
        """Posterior ``θ̂`` for every folded-in document (all groups).

        Returns
        -------
        numpy.ndarray
            ``D × K`` row-normalised ``(α_k + n_{d,k}) / Σ_k (α_k + n_{d,k})``.
        """
        theta = self.doc_topic + self.alpha[None, :]
        return theta / theta.sum(axis=1, keepdims=True)


def run_fit_loop(sampler, state, config, rng: np.random.Generator,
                 callback=None) -> None:
    """Drive a flat sampler through a full fit: sweeps, Minka hyper-parameter
    updates, and per-iteration callbacks.

    Shared by :class:`~repro.topicmodel.lda.LatentDirichletAllocation` and
    :class:`~repro.core.phrase_lda.PhraseLDA` so the sweep/hyperopt/callback
    choreography exists in exactly one place.  ``config`` provides
    ``n_iterations``, ``optimize_hyperparameters``, ``burn_in``, and
    ``hyper_optimize_interval``; ``state`` holds the count matrices the
    sampler mutates (synchronised before every external observation).
    """
    from repro.topicmodel.hyperopt import (
        optimize_asymmetric_alpha,
        optimize_symmetric_beta,
    )

    for iteration in range(config.n_iterations):
        sampler.sweep(rng)
        if (config.optimize_hyperparameters
                and iteration >= config.burn_in
                and (iteration + 1) % config.hyper_optimize_interval == 0):
            sampler.sync_counts()
            state.alpha = optimize_asymmetric_alpha(state.doc_topic_counts, state.alpha)
            state.beta = optimize_symmetric_beta(state.topic_word_counts, state.beta)
            sampler.rebuild(state.alpha, state.beta)
        if callback is not None:
            sampler.sync_counts()
            callback(iteration, state)
    sampler.sync_counts()


_SAMPLERS = {"c": CKernelSampler, "numpy": VectorizedGibbsSampler}


def make_sampler(engine: str, flat: FlatPhraseCorpus, topic_word: np.ndarray,
                 doc_topic: np.ndarray, topic_totals: np.ndarray,
                 assign: np.ndarray, alpha: np.ndarray, beta: float):
    """Build the sampler for a resolved (non-reference) engine name.

    The flat samplers draw by inverse CDF without the reference sampler's
    zero-total uniform fallback, which is only reachable with degenerate
    priors — so strictly positive ``alpha`` and ``beta`` are required here
    (guaranteeing every clique posterior has positive mass).
    """
    if beta <= 0 or np.any(np.asarray(alpha) <= 0):
        raise ValueError(
            f"engine {engine!r} requires alpha > 0 and beta > 0 (got "
            f"alpha min {float(np.min(alpha))}, beta {beta}); use "
            f"engine='reference' for degenerate priors")
    try:
        cls = _SAMPLERS[engine]
    except KeyError:
        raise ValueError(f"no flat sampler for engine {engine!r}") from None
    return cls(flat, topic_word, doc_topic, topic_totals, assign, alpha, beta)
