/* Collapsed Gibbs sweep kernel for PhraseLDA (paper Eq. 7).
 *
 * One call performs one full sweep over every clique (phrase instance) of
 * the flattened corpus, resampling the clique topic from the posterior of
 * Eq. 7.  The floating-point operations mirror, term for term and in the
 * same order, the readable NumPy reference sampler in
 * repro/core/phrase_lda.py (ReferencePhraseLDA._sweep), so the kernel
 * produces bit-identical topic assignments when driven with the same
 * pre-drawn uniforms.
 *
 * LDA is the all-singleton special case: with every clique of size one the
 * inner product below collapses to the standard collapsed-Gibbs
 * conditional, which is why repro/topicmodel/lda.py reuses this kernel.
 *
 * Compiled on demand by repro.topicmodel.ckernel via the system C compiler;
 * no Python.h dependency, plain C99 + ctypes.
 *
 * Preconditions (enforced by the Python wrapper):
 *   - alpha[k] > 0 for all k and beta > 0, so every clique posterior has
 *     strictly positive mass and the inverse-CDF draw below never needs the
 *     degenerate uniform fallback of the reference `_sample_index`;
 *   - uniforms holds one draw in [0, 1) per *non-empty* clique, consumed in
 *     clique order (the reference consumes exactly one rng.random() per
 *     non-empty clique and skips empty ones);
 *   - scratch has room for n_topics doubles.
 */

#include <stdint.h>

void phrase_lda_sweep(const int32_t *tokens,      /* flat token ids            */
                      const int64_t *offsets,     /* n_cliques+1 token offsets */
                      const int32_t *clique_doc,  /* doc id per clique         */
                      int64_t n_cliques,
                      int64_t n_topics,
                      const double *alpha,        /* K-vector document prior   */
                      double beta,
                      double beta_sum,            /* beta * vocabulary size    */
                      int64_t *topic_word,        /* V x K row-major counts    */
                      int64_t *doc_topic,         /* D x K row-major counts    */
                      int64_t *topic_totals,      /* K counts                  */
                      int64_t *assign,            /* clique topic per clique   */
                      const double *uniforms,     /* one U[0,1) per clique     */
                      double *scratch)            /* K doubles                 */
{
    const int64_t K = n_topics;
    double *weights = scratch;
    int64_t next_uniform = 0;

    for (int64_t g = 0; g < n_cliques; g++) {
        const int64_t t0 = offsets[g];
        const int64_t size = offsets[g + 1] - t0;
        if (size == 0)
            continue;
        int64_t *dc = doc_topic + (int64_t)clique_doc[g] * K;
        const int64_t k_old = assign[g];

        /* Remove the whole clique from the counts (Z without C_{d,g}). */
        for (int64_t t = t0; t < t0 + size; t++)
            topic_word[(int64_t)tokens[t] * K + k_old] -= 1;
        dc[k_old] -= size;
        topic_totals[k_old] -= size;

        /* Eq. 7: product over the clique's tokens, in the reference's
         * operation order:
         *   w *= (alpha_k + N_dk) + j
         *   w *= beta + N_wk
         *   w /= (beta_sum + N_k) + j                                    */
        for (int64_t k = 0; k < K; k++)
            weights[k] = 1.0;
        for (int64_t j = 0; j < size; j++) {
            const double jd = (double)j;
            const int64_t *tw = topic_word + (int64_t)tokens[t0 + j] * K;
            for (int64_t k = 0; k < K; k++)
                weights[k] *= (alpha[k] + (double)dc[k]) + jd;
            for (int64_t k = 0; k < K; k++)
                weights[k] *= beta + (double)tw[k];
            for (int64_t k = 0; k < K; k++)
                weights[k] /= (beta_sum + (double)topic_totals[k]) + jd;
        }

        /* Inverse-CDF draw: in-place cumulative sum then the leftmost
         * index with cum[k] >= u * total (numpy searchsorted, side="left"). */
        for (int64_t k = 1; k < K; k++)
            weights[k] += weights[k - 1];
        const double target = uniforms[next_uniform++] * weights[K - 1];
        int64_t k_new = 0;
        while (k_new < K - 1 && weights[k_new] < target)
            k_new++;

        assign[g] = k_new;
        for (int64_t t = t0; t < t0 + size; t++)
            topic_word[(int64_t)tokens[t] * K + k_new] += 1;
        dc[k_new] += size;
        topic_totals[k_new] += size;
    }
}
