"""On-demand compilation and loading of the PhraseLDA C sweep kernel.

``phrase_lda_kernel.c`` (same directory) is a dependency-free C99 file that
implements one collapsed Gibbs sweep over the flattened corpus.  This module
compiles it with the system C compiler into a small shared library, caches
the build keyed by a hash of the source, and exposes it through
:mod:`ctypes`.  Nothing here is required: when no compiler is available the
callers fall back to the pure-NumPy vectorized sampler
(:class:`repro.topicmodel.gibbs.VectorizedGibbsSampler`), so the kernel is a
strictly optional accelerator.

Environment variables
---------------------
``REPRO_KERNEL_BUILD_DIR``
    Override the build cache directory (default: ``_build/`` next to this
    file).
``REPRO_DISABLE_C_KERNEL``
    Set to any non-empty value to pretend no compiler exists (useful for
    exercising the NumPy fallback).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

_SOURCE_PATH = Path(__file__).with_name("phrase_lda_kernel.c")

_lib: Optional[ctypes.CDLL] = None
_load_attempted = False
_load_error: Optional[str] = None


def _build_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_BUILD_DIR")
    if override:
        return Path(override)
    return Path(__file__).parent / "_build"


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile(source: Path, destination: Path) -> None:
    """Compile ``source`` into the shared library ``destination``.

    Builds into a temporary file in the destination directory and renames it
    into place so concurrent builders never observe a half-written library.
    """
    compiler = _compiler()
    if compiler is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    destination.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=destination.parent)
    os.close(fd)
    try:
        subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", str(source), "-o", tmp_name],
            check=True, capture_output=True, text=True, timeout=120,
        )
        os.replace(tmp_name, destination)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _library_path() -> Path:
    digest = hashlib.sha256(_SOURCE_PATH.read_bytes()).hexdigest()[:16]
    return _build_dir() / f"phrase_lda_kernel_{digest}.so"


def load_kernel() -> Optional[ctypes.CDLL]:
    """Return the compiled kernel library, building it if necessary.

    Returns ``None`` (and remembers why in :func:`load_error`) when the
    kernel cannot be built or loaded; callers should then use the NumPy
    sampler.
    """
    global _lib, _load_attempted, _load_error
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get("REPRO_DISABLE_C_KERNEL"):
        _load_error = "disabled via REPRO_DISABLE_C_KERNEL"
        return None
    try:
        path = _library_path()
        if not path.exists():
            _compile(_SOURCE_PATH, path)
        lib = ctypes.CDLL(str(path))
        fn = lib.phrase_lda_sweep
        fn.restype = None
        fn.argtypes = [
            ctypes.POINTER(ctypes.c_int32),   # tokens
            ctypes.POINTER(ctypes.c_int64),   # offsets
            ctypes.POINTER(ctypes.c_int32),   # clique_doc
            ctypes.c_int64,                   # n_cliques
            ctypes.c_int64,                   # n_topics
            ctypes.POINTER(ctypes.c_double),  # alpha
            ctypes.c_double,                  # beta
            ctypes.c_double,                  # beta_sum
            ctypes.POINTER(ctypes.c_int64),   # topic_word
            ctypes.POINTER(ctypes.c_int64),   # doc_topic
            ctypes.POINTER(ctypes.c_int64),   # topic_totals
            ctypes.POINTER(ctypes.c_int64),   # assign
            ctypes.POINTER(ctypes.c_double),  # uniforms
            ctypes.POINTER(ctypes.c_double),  # scratch
        ]
        _lib = lib
    except Exception as exc:  # missing compiler, failed build, bad .so, ...
        _load_error = f"{type(exc).__name__}: {exc}"
        _lib = None
    return _lib


def kernel_available() -> bool:
    """True when the C sweep kernel can be compiled and loaded."""
    return load_kernel() is not None


def load_error() -> Optional[str]:
    """Why the kernel is unavailable (``None`` when it loaded fine)."""
    load_kernel()
    return _load_error


def _i32(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))


def _i64(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _f64(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def run_sweep(tokens: np.ndarray, offsets: np.ndarray, clique_doc: np.ndarray,
              n_topics: int, alpha: np.ndarray, beta: float, beta_sum: float,
              topic_word: np.ndarray, doc_topic: np.ndarray,
              topic_totals: np.ndarray, assign: np.ndarray,
              uniforms: np.ndarray, scratch: np.ndarray) -> None:
    """Invoke one C sweep over all cliques (arrays must be C-contiguous)."""
    lib = load_kernel()
    if lib is None:
        raise RuntimeError(f"C kernel unavailable: {_load_error}")
    lib.phrase_lda_sweep(
        _i32(tokens), _i64(offsets), _i32(clique_doc),
        ctypes.c_int64(len(offsets) - 1), ctypes.c_int64(n_topics),
        _f64(alpha), ctypes.c_double(beta), ctypes.c_double(beta_sum),
        _i64(topic_word), _i64(doc_topic), _i64(topic_totals),
        _i64(assign), _f64(uniforms), _f64(scratch),
    )
