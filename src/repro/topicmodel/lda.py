"""Collapsed Gibbs sampling for Latent Dirichlet Allocation.

This is the 'bag-of-words' baseline from the paper (Section 5.1) and the
topic-model component reused by the KERT and Turbo Topics baselines.  The
sampler is the standard collapsed Gibbs sampler of Griffiths (2002): with
``Θ`` and ``Φ`` integrated out, the conditional for token ``i`` of document
``d`` is

    p(z_{d,i} = k | rest) ∝ (α_k + N_{d,k}) · (β_w + N_{w,k}) / (Σ_x β_x + N_k)

PhraseLDA (:mod:`repro.core.phrase_lda`) generalises this sampler to cliques
of tokens; when every clique has size one its conditional reduces exactly to
the expression above, which is why the paper can reuse one implementation for
both models ("LDA is a special case of PhraseLDA").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.text.corpus import Corpus
from repro.topicmodel.dirichlet import collapsed_log_likelihood, normalize_rows
from repro.topicmodel.gibbs import (
    FlatPhraseCorpus,
    make_sampler,
    random_initialization,
    resolve_engine,
    run_fit_loop,
)
from repro.topicmodel.hyperopt import optimize_asymmetric_alpha, optimize_symmetric_beta
from repro.utils.rng import SeedLike, new_rng

DocumentsLike = Union[Corpus, Sequence[Sequence[int]]]


@dataclass
class LDAConfig:
    """Configuration for collapsed Gibbs LDA.

    Parameters
    ----------
    n_topics:
        Number of topics ``K``.
    alpha:
        Symmetric document-topic prior (per-topic value).  The paper uses
        standard LDA defaults; 50/K is a common choice and the default here.
    beta:
        Symmetric topic-word prior.
    n_iterations:
        Number of Gibbs sweeps.
    optimize_hyperparameters:
        Re-estimate α (asymmetric) and β (symmetric) with Minka's fixed-point
        update every ``hyper_optimize_interval`` iterations (paper Section 5.3).
    hyper_optimize_interval:
        Iterations between hyper-parameter updates.
    burn_in:
        Iterations before hyper-parameter optimisation starts.
    seed:
        Random seed.
    engine:
        Sweep implementation: ``"auto"`` (compiled kernel when available,
        NumPy otherwise), ``"c"``, ``"numpy"``, or ``"reference"`` (the
        readable per-token loop).  All engines produce identical
        assignments under a fixed seed.
    """

    n_topics: int = 10
    alpha: Optional[float] = None
    beta: float = 0.01
    n_iterations: int = 100
    optimize_hyperparameters: bool = False
    hyper_optimize_interval: int = 25
    burn_in: int = 10
    seed: SeedLike = None
    engine: str = "auto"

    def resolved_alpha(self) -> float:
        """Return the symmetric α value, defaulting to ``50 / K``."""
        if self.alpha is not None:
            return float(self.alpha)
        return 50.0 / self.n_topics


@dataclass
class TopicModelState:
    """Snapshot of a fitted topic model shared by LDA and PhraseLDA.

    Attributes
    ----------
    topic_word_counts:
        ``V × K`` matrix ``N_{x,k}``.
    doc_topic_counts:
        ``D × K`` matrix ``N_{d,k}``.
    topic_counts:
        Length-``K`` vector ``N_k``.
    alpha, beta:
        Final hyper-parameters (α is a length-``K`` vector, β a scalar).
    assignments:
        Per-document list of per-token topic assignments.
    """

    topic_word_counts: np.ndarray
    doc_topic_counts: np.ndarray
    topic_counts: np.ndarray
    alpha: np.ndarray
    beta: float
    assignments: List[np.ndarray] = field(default_factory=list)

    @property
    def n_topics(self) -> int:
        """Number of topics ``K``."""
        return self.topic_word_counts.shape[1]

    @property
    def vocabulary_size(self) -> int:
        """Vocabulary size ``V``."""
        return self.topic_word_counts.shape[0]

    def phi(self) -> np.ndarray:
        """Return the ``K × V`` topic-word distribution estimate ``φ̂``."""
        return normalize_rows(self.topic_word_counts.T, prior=self.beta)

    def theta(self) -> np.ndarray:
        """Return the ``D × K`` document-topic distribution estimate ``θ̂``."""
        return normalize_rows(self.doc_topic_counts, prior=self.alpha)

    def top_words(self, topic: int, n: int = 10) -> List[int]:
        """Return the ids of the ``n`` most probable words in ``topic``."""
        phi_k = self.phi()[topic]
        return list(np.argsort(-phi_k)[:n])

    def log_likelihood(self) -> float:
        """Collapsed joint log-likelihood (up to constants)."""
        beta_vec = np.full(self.vocabulary_size, self.beta)
        return collapsed_log_likelihood(self.topic_word_counts,
                                        self.doc_topic_counts,
                                        self.alpha, beta_vec)


IterationCallback = Callable[[int, TopicModelState], None]


class LatentDirichletAllocation:
    """Collapsed Gibbs LDA over token-id documents.

    Example
    -------
    >>> docs = [[0, 1, 2, 0], [2, 3, 3, 1]]
    >>> model = LatentDirichletAllocation(LDAConfig(n_topics=2, n_iterations=20, seed=1))
    >>> state = model.fit(docs, vocabulary_size=4)
    >>> state.phi().shape
    (2, 4)
    """

    def __init__(self, config: Optional[LDAConfig] = None) -> None:
        self.config = config or LDAConfig()
        self.state: Optional[TopicModelState] = None

    # -- public API --------------------------------------------------------------
    def fit(self, documents: DocumentsLike, vocabulary_size: Optional[int] = None,
            callback: Optional[IterationCallback] = None) -> TopicModelState:
        """Run the Gibbs sampler and return the final :class:`TopicModelState`.

        Parameters
        ----------
        documents:
            A :class:`~repro.text.corpus.Corpus` or a sequence of documents,
            each a sequence of integer word ids.
        vocabulary_size:
            Required when passing raw documents; inferred from a corpus.
        callback:
            Called as ``callback(iteration, state)`` after every sweep —
            used by the perplexity-vs-iteration experiments (Figures 6, 7).
        """
        token_docs, vocabulary_size = _extract_documents(documents, vocabulary_size)
        engine = resolve_engine(self.config.engine)
        if engine != "reference":
            state = self._fit_flat(engine, token_docs, vocabulary_size, callback)
            self.state = state
            return state
        rng = new_rng(self.config.seed)
        config = self.config
        n_topics = config.n_topics

        alpha = np.full(n_topics, config.resolved_alpha(), dtype=float)
        beta = float(config.beta)

        n_docs = len(token_docs)
        topic_word = np.zeros((vocabulary_size, n_topics), dtype=np.int64)
        doc_topic = np.zeros((n_docs, n_topics), dtype=np.int64)
        topic_totals = np.zeros(n_topics, dtype=np.int64)
        assignments: List[np.ndarray] = []

        # -- random initialisation ------------------------------------------------
        for d, doc in enumerate(token_docs):
            doc_assign = rng.integers(0, n_topics, size=len(doc))
            assignments.append(doc_assign)
            for w, k in zip(doc, doc_assign):
                topic_word[w, k] += 1
                doc_topic[d, k] += 1
                topic_totals[k] += 1

        state = TopicModelState(topic_word_counts=topic_word,
                                doc_topic_counts=doc_topic,
                                topic_counts=topic_totals,
                                alpha=alpha, beta=beta,
                                assignments=assignments)

        # -- Gibbs sweeps ------------------------------------------------------------
        for iteration in range(config.n_iterations):
            self._sweep(token_docs, state, rng)
            if (config.optimize_hyperparameters
                    and iteration >= config.burn_in
                    and (iteration + 1) % config.hyper_optimize_interval == 0):
                state.alpha = optimize_asymmetric_alpha(state.doc_topic_counts, state.alpha)
                state.beta = optimize_symmetric_beta(state.topic_word_counts, state.beta)
            if callback is not None:
                callback(iteration, state)

        self.state = state
        return state

    def _fit_flat(self, engine: str, token_docs: List[np.ndarray],
                  vocabulary_size: int,
                  callback: Optional[IterationCallback]) -> TopicModelState:
        """Fit via a flat-buffer engine (all-singleton PhraseLDA sampling).

        Consumes the random stream exactly like the reference loop, so a
        fixed seed gives identical assignments across engines.
        """
        config = self.config
        rng = new_rng(config.seed)
        n_topics = config.n_topics
        alpha = np.full(n_topics, config.resolved_alpha(), dtype=float)
        beta = float(config.beta)

        flat = FlatPhraseCorpus.from_token_docs(token_docs)
        topic_word, doc_topic, topic_totals, assign = random_initialization(
            flat, n_topics, vocabulary_size, rng)
        # For all-singleton cliques the per-token assignments ARE the clique
        # assignments; the per-document arrays are views into the flat buffer.
        assignments = [assign[g0:g1] for g0, g1 in flat.doc_ranges]
        state = TopicModelState(topic_word_counts=topic_word,
                                doc_topic_counts=doc_topic,
                                topic_counts=topic_totals,
                                alpha=alpha, beta=beta,
                                assignments=assignments)
        sampler = make_sampler(engine, flat, topic_word, doc_topic,
                               topic_totals, assign, alpha, beta)
        run_fit_loop(sampler, state, config, rng, callback)
        return state

    def infer_document_topics(self, document: Sequence[int],
                              n_iterations: int = 20,
                              seed: SeedLike = None) -> np.ndarray:
        """Fold a new document in against the trained model and return θ̂.

        Keeps the trained topic-word counts fixed and Gibbs-samples only the
        new document's assignments — the standard fold-in used for held-out
        perplexity.
        """
        if self.state is None:
            raise RuntimeError("fit() must be called before inference")
        state = self.state
        rng = new_rng(seed)
        n_topics = state.n_topics
        beta_sum = state.beta * state.vocabulary_size

        doc = np.asarray(list(document), dtype=np.int64)
        local_topic = np.zeros(n_topics, dtype=np.int64)
        assign = rng.integers(0, n_topics, size=len(doc))
        for k in assign:
            local_topic[k] += 1

        word_factor = state.topic_word_counts + state.beta
        topic_denominator = state.topic_counts + beta_sum
        for _ in range(n_iterations):
            for i, w in enumerate(doc):
                k_old = assign[i]
                local_topic[k_old] -= 1
                weights = (state.alpha + local_topic) * word_factor[w] / topic_denominator
                k_new = _sample_index(rng, weights)
                assign[i] = k_new
                local_topic[k_new] += 1
        theta = (local_topic + state.alpha)
        return theta / theta.sum()

    # -- internals -------------------------------------------------------------------
    def _sweep(self, token_docs: List[np.ndarray], state: TopicModelState,
               rng: np.random.Generator) -> None:
        """One full Gibbs sweep over every token."""
        topic_word = state.topic_word_counts
        doc_topic = state.doc_topic_counts
        topic_totals = state.topic_counts
        alpha = state.alpha
        beta = state.beta
        beta_sum = beta * state.vocabulary_size

        for d, doc in enumerate(token_docs):
            doc_assign = state.assignments[d]
            doc_counts = doc_topic[d]
            for i in range(len(doc)):
                w = doc[i]
                k_old = doc_assign[i]
                # remove token from counts
                topic_word[w, k_old] -= 1
                doc_counts[k_old] -= 1
                topic_totals[k_old] -= 1
                # conditional posterior over topics
                weights = (alpha + doc_counts) * (beta + topic_word[w]) / (beta_sum + topic_totals)
                k_new = _sample_index(rng, weights)
                # add token back
                doc_assign[i] = k_new
                topic_word[w, k_new] += 1
                doc_counts[k_new] += 1
                topic_totals[k_new] += 1


def _extract_documents(documents: DocumentsLike,
                       vocabulary_size: Optional[int]) -> tuple[List[np.ndarray], int]:
    """Normalise the input into numpy token-id arrays plus the vocabulary size."""
    if isinstance(documents, Corpus):
        token_docs = [np.asarray(doc.tokens, dtype=np.int64) for doc in documents]
        return token_docs, documents.vocabulary_size
    token_docs = [np.asarray(list(doc), dtype=np.int64) for doc in documents]
    if vocabulary_size is None:
        max_id = max((int(doc.max()) for doc in token_docs if len(doc)), default=-1)
        vocabulary_size = max_id + 1
    return token_docs, vocabulary_size


def _sample_index(rng: np.random.Generator, weights: np.ndarray) -> int:
    """Sample an index proportional to non-negative ``weights``."""
    cumulative = np.cumsum(weights)
    total = cumulative[-1]
    if total <= 0:
        return int(rng.integers(0, len(weights)))
    return int(np.searchsorted(cumulative, rng.random() * total))
