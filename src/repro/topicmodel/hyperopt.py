"""Dirichlet hyper-parameter optimisation (Minka's fixed-point method).

The paper optimises the Dirichlet hyper-parameters α and β with "the
fixed-point method proposed by [22]" (Minka, *Estimating a Dirichlet
distribution*, 2000) for the user-study and perplexity experiments, and turns
optimisation off for the timing experiments.  Both update rules are
implemented here and shared by LDA and PhraseLDA:

* :func:`optimize_asymmetric_alpha` — per-topic α_k from document-topic counts.
* :func:`optimize_symmetric_beta` — a single symmetric β from topic-word counts.

The fixed-point update for an asymmetric Dirichlet given count matrix
``N`` (rows = observations, columns = dimensions) is::

    α_k ← α_k · Σ_d [Ψ(N_dk + α_k) − Ψ(α_k)] / Σ_d [Ψ(N_d· + Σα) − Ψ(Σα)]

where Ψ is the digamma function.
"""

from __future__ import annotations

import numpy as np
from scipy.special import psi  # digamma

_MIN_HYPER = 1e-8


def optimize_asymmetric_alpha(doc_topic_counts: np.ndarray,
                              alpha: np.ndarray,
                              n_iterations: int = 20,
                              tolerance: float = 1e-6) -> np.ndarray:
    """Return an updated asymmetric α via Minka's fixed-point iteration.

    Parameters
    ----------
    doc_topic_counts:
        ``D × K`` matrix of per-document topic counts ``N_{d,k}``.
    alpha:
        Current ``K``-vector of Dirichlet parameters (the starting point).
    n_iterations:
        Maximum number of fixed-point sweeps.
    tolerance:
        Stop early when the largest absolute change falls below this.
    """
    counts = np.asarray(doc_topic_counts, dtype=float)
    alpha = np.asarray(alpha, dtype=float).copy()
    if counts.ndim != 2:
        raise ValueError("doc_topic_counts must be a 2-D matrix")
    if counts.shape[1] != alpha.shape[0]:
        raise ValueError("alpha length must equal number of topics")

    doc_lengths = counts.sum(axis=1)
    for _ in range(n_iterations):
        alpha_sum = alpha.sum()
        # Denominator: Σ_d Ψ(N_d + Σα) − D·Ψ(Σα)
        denominator = np.sum(psi(doc_lengths + alpha_sum)) - counts.shape[0] * psi(alpha_sum)
        if denominator <= 0:
            break
        # Numerator per topic: Σ_d Ψ(N_dk + α_k) − D·Ψ(α_k)
        numerator = np.sum(psi(counts + alpha), axis=0) - counts.shape[0] * psi(alpha)
        new_alpha = alpha * numerator / denominator
        new_alpha = np.maximum(new_alpha, _MIN_HYPER)
        if np.max(np.abs(new_alpha - alpha)) < tolerance:
            alpha = new_alpha
            break
        alpha = new_alpha
    return alpha


def optimize_symmetric_beta(topic_word_counts: np.ndarray,
                            beta: float,
                            n_iterations: int = 20,
                            tolerance: float = 1e-6) -> float:
    """Return an updated symmetric β via Minka's fixed-point iteration.

    Parameters
    ----------
    topic_word_counts:
        ``V × K`` matrix of topic-word counts ``N_{x,k}``.
    beta:
        Current symmetric concentration (scalar, per-dimension value).
    """
    counts = np.asarray(topic_word_counts, dtype=float)
    if counts.ndim != 2:
        raise ValueError("topic_word_counts must be a 2-D matrix")
    vocabulary_size, n_topics = counts.shape
    beta = float(beta)

    topic_totals = counts.sum(axis=0)  # N_k per topic
    for _ in range(n_iterations):
        beta_sum = beta * vocabulary_size
        denominator = vocabulary_size * (
            np.sum(psi(topic_totals + beta_sum)) - n_topics * psi(beta_sum)
        )
        if denominator <= 0:
            break
        numerator = np.sum(psi(counts + beta)) - n_topics * vocabulary_size * psi(beta)
        new_beta = beta * numerator / denominator
        new_beta = max(new_beta, _MIN_HYPER)
        if abs(new_beta - beta) < tolerance:
            beta = new_beta
            break
        beta = new_beta
    return float(beta)
