"""Perplexity evaluation for topic models (Figures 6 and 7).

The paper evaluates "how well the learned topic model predicts a held-out
portion of the corpus" and plots perplexity as a function of Gibbs iteration
for PhraseLDA versus LDA.  Because the *generative* process of PhraseLDA and
LDA is identical (the clique potential only constrains inference), their
perplexities are directly comparable.

Perplexity of a token stream ``w_1..w_N`` under a model with topic-word
distribution ``φ`` and per-document topic mixtures ``θ_d`` is::

    perplexity = exp( − Σ_d Σ_i log Σ_k θ_{d,k} φ_{k,w_{d,i}} / N )

Two evaluation modes are provided:

* :func:`training_perplexity` — perplexity of the training tokens under the
  current state (cheap; monotone proxy used for per-iteration traces).
* :func:`held_out_perplexity` — document-completion perplexity: for every
  held-out document, θ is estimated on the first half of its tokens (fold-in
  using the trained φ) and perplexity is measured on the second half.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.topicmodel.lda import TopicModelState, _sample_index
from repro.utils.rng import SeedLike, new_rng


def perplexity_from_likelihood(total_log_likelihood: float, n_tokens: int) -> float:
    """Convert a summed token log-likelihood into perplexity."""
    if n_tokens <= 0:
        raise ValueError("n_tokens must be positive")
    return float(np.exp(-total_log_likelihood / n_tokens))


def training_perplexity(state: TopicModelState,
                        documents: Sequence[Sequence[int]]) -> float:
    """Perplexity of the training documents under the current model state."""
    phi = state.phi()
    theta = state.theta()
    log_likelihood = 0.0
    n_tokens = 0
    for d, doc in enumerate(documents):
        doc = np.asarray(list(doc), dtype=np.int64)
        if len(doc) == 0:
            continue
        token_probs = theta[d] @ phi[:, doc]
        log_likelihood += float(np.sum(np.log(np.maximum(token_probs, 1e-300))))
        n_tokens += len(doc)
    return perplexity_from_likelihood(log_likelihood, n_tokens)


def held_out_perplexity(state: TopicModelState,
                        held_out_documents: Sequence[Sequence[int]],
                        n_fold_in_iterations: int = 20,
                        seed: SeedLike = None) -> float:
    """Document-completion perplexity on held-out documents.

    For each held-out document the tokens are split into an *estimation* half
    (used to fold in a document-topic mixture with the trained ``φ`` held
    fixed) and an *evaluation* half on which the log-likelihood is measured.
    Documents with fewer than two tokens are skipped.
    """
    rng = new_rng(seed)
    phi = state.phi()
    alpha = state.alpha
    n_topics = state.n_topics

    log_likelihood = 0.0
    n_tokens = 0
    for doc in held_out_documents:
        doc = [w for w in doc if 0 <= w < state.vocabulary_size]
        if len(doc) < 2:
            continue
        half = len(doc) // 2
        estimation, evaluation = doc[:half], doc[half:]
        theta = _fold_in_theta(phi, alpha, estimation, n_fold_in_iterations, rng)
        token_probs = theta @ phi[:, np.asarray(evaluation, dtype=np.int64)]
        log_likelihood += float(np.sum(np.log(np.maximum(token_probs, 1e-300))))
        n_tokens += len(evaluation)
    if n_tokens == 0:
        raise ValueError("no held-out tokens available for evaluation")
    return perplexity_from_likelihood(log_likelihood, n_tokens)


def _fold_in_theta(phi: np.ndarray, alpha: np.ndarray, tokens: List[int],
                   n_iterations: int, rng: np.random.Generator) -> np.ndarray:
    """Estimate θ for a new document by Gibbs sampling with φ fixed."""
    n_topics = phi.shape[0]
    tokens = np.asarray(tokens, dtype=np.int64)
    assign = rng.integers(0, n_topics, size=len(tokens))
    topic_counts = np.zeros(n_topics, dtype=np.int64)
    for k in assign:
        topic_counts[k] += 1

    for _ in range(n_iterations):
        for i, w in enumerate(tokens):
            k_old = assign[i]
            topic_counts[k_old] -= 1
            weights = (alpha + topic_counts) * phi[:, w]
            k_new = _sample_index(rng, weights)
            assign[i] = k_new
            topic_counts[k_new] += 1
    theta = topic_counts + alpha
    return theta / theta.sum()
