"""Dirichlet / multinomial utilities shared by the topic models.

These helpers implement the closed-form pieces of the collapsed joint
``P(Z, W)`` (paper Eq. 3 and the Appendix): the log multinomial Beta function
appearing in the integrated-out Dirichlet terms, Dirichlet sampling for the
synthetic corpus generators, and row normalisation used when converting count
matrices into estimated ``φ``/``θ`` distributions.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln


def log_multinomial_beta(alpha: np.ndarray, axis: int | None = None) -> np.ndarray | float:
    """Return ``log B(α) = Σ log Γ(α_i) − log Γ(Σ α_i)``.

    When ``axis`` is given the Beta function is evaluated along that axis of a
    matrix (e.g. per topic row of a count-plus-prior matrix).
    """
    alpha = np.asarray(alpha, dtype=float)
    if axis is None:
        return float(np.sum(gammaln(alpha)) - gammaln(np.sum(alpha)))
    return np.sum(gammaln(alpha), axis=axis) - gammaln(np.sum(alpha, axis=axis))


def sample_dirichlet(rng: np.random.Generator, alpha: np.ndarray, size: int | None = None) -> np.ndarray:
    """Draw from ``Dir(α)`` (one sample, or ``size`` rows)."""
    alpha = np.asarray(alpha, dtype=float)
    if np.any(alpha <= 0):
        raise ValueError("Dirichlet parameters must be positive")
    if size is None:
        return rng.dirichlet(alpha)
    return rng.dirichlet(alpha, size=size)


def normalize_rows(matrix: np.ndarray, prior: float | np.ndarray = 0.0) -> np.ndarray:
    """Return ``(matrix + prior)`` with every row normalised to sum to one.

    Used to turn topic-word count matrices ``N_{x,k}`` into ``φ̂_k`` estimates
    and document-topic counts ``N_{d,k}`` into ``θ̂_d`` estimates.
    """
    mat = np.asarray(matrix, dtype=float) + prior
    row_sums = mat.sum(axis=1, keepdims=True)
    # Rows that are entirely zero become uniform distributions.
    zero_rows = (row_sums == 0).flatten()
    if np.any(zero_rows):
        mat[zero_rows, :] = 1.0
        row_sums = mat.sum(axis=1, keepdims=True)
    return mat / row_sums


def collapsed_log_likelihood(topic_word_counts: np.ndarray,
                             doc_topic_counts: np.ndarray,
                             alpha: np.ndarray,
                             beta: np.ndarray) -> float:
    """Log of the collapsed joint ``P(Z, W | α, β)`` up to constants.

    Implements the product-of-Beta-functions form from the paper's Appendix:

    ``P(Z, W) ∝ Π_d B(α + N_d,·) / B(α) · Π_k B(β + N_·,k) / B(β)``

    Useful for convergence monitoring and for hyper-parameter optimisation
    sanity checks.
    """
    alpha = np.asarray(alpha, dtype=float)
    beta = np.asarray(beta, dtype=float)
    doc_term = np.sum(log_multinomial_beta(doc_topic_counts + alpha, axis=1))
    doc_term -= doc_topic_counts.shape[0] * log_multinomial_beta(alpha)
    topic_term = np.sum(log_multinomial_beta(topic_word_counts.T + beta, axis=1))
    topic_term -= topic_word_counts.shape[1] * log_multinomial_beta(beta)
    return float(doc_term + topic_term)
