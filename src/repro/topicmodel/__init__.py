"""Topic-modeling substrate: LDA, hyper-parameter optimisation, perplexity.

PhraseLDA (the paper's Section 5 contribution, in :mod:`repro.core.phrase_lda`)
generalises Latent Dirichlet Allocation: when every phrase is a single word it
reduces exactly to collapsed-Gibbs LDA.  This subpackage holds the shared
machinery:

* :mod:`repro.topicmodel.lda` — plain collapsed Gibbs LDA (the paper's main
  baseline and the topic-model component of KERT and Turbo Topics).
* :mod:`repro.topicmodel.hyperopt` — Minka's fixed-point Dirichlet
  hyper-parameter updates (the paper optimises α, β this way, citing [22]).
* :mod:`repro.topicmodel.perplexity` — held-out perplexity used in Figures 6-7.
* :mod:`repro.topicmodel.dirichlet` — small Dirichlet/multinomial utilities.
"""

from repro.topicmodel.dirichlet import (
    log_multinomial_beta,
    sample_dirichlet,
    normalize_rows,
)
from repro.topicmodel.hyperopt import (
    optimize_asymmetric_alpha,
    optimize_symmetric_beta,
)
from repro.topicmodel.gibbs import (
    ENGINES,
    FlatPhraseCorpus,
    VectorizedGibbsSampler,
    resolve_engine,
)
from repro.topicmodel.lda import LDAConfig, LatentDirichletAllocation, TopicModelState
from repro.topicmodel.perplexity import (
    held_out_perplexity,
    perplexity_from_likelihood,
    training_perplexity,
)

__all__ = [
    "log_multinomial_beta",
    "sample_dirichlet",
    "normalize_rows",
    "optimize_asymmetric_alpha",
    "optimize_symmetric_beta",
    "ENGINES",
    "FlatPhraseCorpus",
    "VectorizedGibbsSampler",
    "resolve_engine",
    "LDAConfig",
    "LatentDirichletAllocation",
    "TopicModelState",
    "held_out_perplexity",
    "perplexity_from_likelihood",
    "training_perplexity",
]
